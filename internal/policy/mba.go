package policy

import (
	"fmt"

	"kelp/internal/events"
	"kelp/internal/node"
	"kelp/internal/perfmon"
)

// MBADecision records one control period of the MBA controller.
type MBADecision struct {
	Time     float64
	SocketBW float64
	Latency  float64
	Percent  int
}

// MBAControllerConfig parameterizes the MBA feedback loop.
type MBAControllerConfig struct {
	Socket       int
	Group        string
	Watermarks   ThrottlerWatermarks
	SamplePeriod float64
	// DegradeAfter / RecoverAfter are the watchdog thresholds; 0 selects
	// the core package defaults.
	DegradeAfter, RecoverAfter int
}

// FailSafeMBAPercent is the throttle level pinned while the MBA controller
// is in fail-safe mode: the hardest rate limit MBA offers, protecting the
// accelerated task at the cost of batch throughput.
const FailSafeMBAPercent = 10

// MBAController throttles the low-priority group's memory request rate via
// Intel MBA (paper §VI-D) instead of revoking cores: the same watermark
// feedback as CoreThrottle, actuating the hardware rate controller in 10%
// steps. The paper points out MBA's defect — its throttle also delays
// LLC-served requests — which the simulation reproduces, so this
// configuration trades less ML interference against outsized slowdown of
// cache-resident batch work.
type MBAController struct {
	n       *node.Node
	cfg     MBAControllerConfig
	cur     int
	deg     degradeState
	bounds  perfmon.Bounds
	history []MBADecision
}

// NewMBAController builds the controller at 100% (unthrottled).
func NewMBAController(n *node.Node, cfg MBAControllerConfig) (*MBAController, error) {
	if n == nil {
		return nil, fmt.Errorf("policy: nil node")
	}
	if _, err := n.Cgroups().Group(cfg.Group); err != nil {
		return nil, err
	}
	if cfg.SamplePeriod <= 0 {
		return nil, fmt.Errorf("policy: SamplePeriod = %v", cfg.SamplePeriod)
	}
	if cfg.DegradeAfter < 0 || cfg.RecoverAfter < 0 {
		return nil, fmt.Errorf("policy: mba degrade thresholds K=%d J=%d",
			cfg.DegradeAfter, cfg.RecoverAfter)
	}
	c := &MBAController{
		n:      n,
		cfg:    cfg,
		cur:    100,
		deg:    newDegradeState("mba", cfg.DegradeAfter, cfg.RecoverAfter),
		bounds: cfg.Watermarks.sanityBounds(),
	}
	if err := n.Cgroups().SetMBA(cfg.Group, c.cur); err != nil {
		return nil, err
	}
	return c, nil
}

// Percent returns the current MBA throttle level.
func (c *MBAController) Percent() int { return c.cur }

// Degraded reports whether the controller is in fail-safe mode.
func (c *MBAController) Degraded() bool { return c.deg.guard.Degraded() }

// History returns a copy of the per-period decision trace.
func (c *MBAController) History() []MBADecision {
	return append([]MBADecision(nil), c.history...)
}

// Control implements sim.Controller, hardened like the other controllers:
// sanitized samples, scored enforcement failures, and a fail-safe mode
// that pins the hardest MBA throttle after K consecutive faulted periods.
func (c *MBAController) Control(now float64) {
	if c.n.Faults().Stall(now, "mba") {
		c.fault(now)
		return
	}
	s := c.n.Monitor().Window()
	if s.Elapsed == 0 {
		return
	}
	s, dropped := c.n.Faults().PerturbSample(now, "mba", s)
	if dropped {
		c.fault(now)
		return
	}
	if err := s.Check(c.bounds); err != nil {
		c.deg.reject(c.n, now, err)
		c.fault(now)
		return
	}
	if c.deg.guard.Degraded() {
		if err := c.enforceFailSafe(now); err != nil {
			c.deg.actuateError(c.n, now, err)
			c.deg.guard.Fault()
			return
		}
		c.deg.clean(c.n, now)
		return
	}
	bw := s.SocketBW[c.cfg.Socket]
	lat := s.SocketLatency[c.cfg.Socket]
	w := c.cfg.Watermarks
	switch {
	case bw > w.SocketBWHigh || lat > w.LatencyHigh:
		if c.cur > 10 {
			c.cur -= 10
		}
	case bw < w.SocketBWLow && lat < w.LatencyLow:
		if c.cur < 100 {
			c.cur += 10
		}
	}
	if err := c.enforce(now); err != nil {
		c.deg.actuateError(c.n, now, err)
		c.fault(now)
		return
	}
	c.deg.clean(c.n, now)
	c.history = append(c.history, MBADecision{Time: now, SocketBW: bw, Latency: lat, Percent: c.cur})
	if rec := c.n.Events(); rec != nil {
		rec.Emit(now, events.MBAActuate, "mba", map[string]any{
			"socket_bw": bw, "latency": lat, "percent": c.cur,
		})
	}
}

// enforce pushes the current throttle level through the (possibly
// fault-gated) cgroup interface.
func (c *MBAController) enforce(now float64) error {
	return c.n.Faults().SetMBA(now, c.n.Cgroups(), c.cfg.Group, c.cur)
}

// enforceFailSafe pins the hardest throttle level.
func (c *MBAController) enforceFailSafe(now float64) error {
	c.cur = FailSafeMBAPercent
	return c.enforce(now)
}

// fault scores one faulted period, entering fail-safe after K in a row.
func (c *MBAController) fault(now float64) {
	if !c.deg.fault(c.n, now) {
		return
	}
	if err := c.enforceFailSafe(now); err != nil {
		c.deg.actuateError(c.n, now, err)
	}
}
