package policy

import (
	"fmt"

	"kelp/internal/events"
	"kelp/internal/node"
)

// MBADecision records one control period of the MBA controller.
type MBADecision struct {
	Time     float64
	SocketBW float64
	Latency  float64
	Percent  int
}

// MBAControllerConfig parameterizes the MBA feedback loop.
type MBAControllerConfig struct {
	Socket       int
	Group        string
	Watermarks   ThrottlerWatermarks
	SamplePeriod float64
}

// MBAController throttles the low-priority group's memory request rate via
// Intel MBA (paper §VI-D) instead of revoking cores: the same watermark
// feedback as CoreThrottle, actuating the hardware rate controller in 10%
// steps. The paper points out MBA's defect — its throttle also delays
// LLC-served requests — which the simulation reproduces, so this
// configuration trades less ML interference against outsized slowdown of
// cache-resident batch work.
type MBAController struct {
	n       *node.Node
	cfg     MBAControllerConfig
	cur     int
	history []MBADecision
}

// NewMBAController builds the controller at 100% (unthrottled).
func NewMBAController(n *node.Node, cfg MBAControllerConfig) (*MBAController, error) {
	if n == nil {
		return nil, fmt.Errorf("policy: nil node")
	}
	if _, err := n.Cgroups().Group(cfg.Group); err != nil {
		return nil, err
	}
	if cfg.SamplePeriod <= 0 {
		return nil, fmt.Errorf("policy: SamplePeriod = %v", cfg.SamplePeriod)
	}
	c := &MBAController{n: n, cfg: cfg, cur: 100}
	if err := n.Cgroups().SetMBA(cfg.Group, c.cur); err != nil {
		return nil, err
	}
	return c, nil
}

// Percent returns the current MBA throttle level.
func (c *MBAController) Percent() int { return c.cur }

// History returns a copy of the per-period decision trace.
func (c *MBAController) History() []MBADecision {
	return append([]MBADecision(nil), c.history...)
}

// Control implements sim.Controller.
func (c *MBAController) Control(now float64) {
	s := c.n.Monitor().Window()
	if s.Elapsed == 0 {
		return
	}
	bw := s.SocketBW[c.cfg.Socket]
	lat := s.SocketLatency[c.cfg.Socket]
	w := c.cfg.Watermarks
	switch {
	case bw > w.SocketBWHigh || lat > w.LatencyHigh:
		if c.cur > 10 {
			c.cur -= 10
		}
	case bw < w.SocketBWLow && lat < w.LatencyLow:
		if c.cur < 100 {
			c.cur += 10
		}
	}
	if err := c.n.Cgroups().SetMBA(c.cfg.Group, c.cur); err != nil {
		panic(fmt.Sprintf("policy: mba enforce: %v", err))
	}
	c.history = append(c.history, MBADecision{Time: now, SocketBW: bw, Latency: lat, Percent: c.cur})
	if rec := c.n.Events(); rec != nil {
		rec.Emit(now, events.MBAActuate, "mba", map[string]any{
			"socket_bw": bw, "latency": lat, "percent": c.cur,
		})
	}
}
