package policy

import (
	"fmt"

	"kelp/internal/cpu"
	"kelp/internal/events"
	"kelp/internal/node"
)

// ThrottlerWatermarks are CoreThrottle's thresholds. Prior work (Heracles,
// Dirigent, CPI^2) reacts to socket bandwidth and latency only — it predates
// the distress-signal measurement, which is exactly the gap Kelp exploits.
type ThrottlerWatermarks struct {
	SocketBWHigh, SocketBWLow float64
	LatencyHigh, LatencyLow   float64
}

// DefaultThrottlerWatermarks mirrors the conservative Kelp thresholds at
// socket scope.
func DefaultThrottlerWatermarks(socketBW, baseLatency float64) ThrottlerWatermarks {
	return ThrottlerWatermarks{
		SocketBWHigh: 0.75 * socketBW,
		SocketBWLow:  0.50 * socketBW,
		LatencyHigh:  3.0 * baseLatency,
		LatencyLow:   2.0 * baseLatency,
	}
}

// ThrottlerConfig parameterizes the CoreThrottle controller.
type ThrottlerConfig struct {
	Socket       int
	Group        string
	Pool         cpu.Set
	MinCores     int
	MaxCores     int
	Watermarks   ThrottlerWatermarks
	SamplePeriod float64
}

// ThrottlerDecision records one control period for the actuator plots
// (Fig. 11a, Fig. 12a).
type ThrottlerDecision struct {
	Time     float64
	SocketBW float64
	Latency  float64
	Cores    int
}

// Throttler is the CoreThrottle runtime: a feedback loop that narrows or
// widens the low-priority tasks' CPU mask (paper §V-A, configuration CT,
// mimicking [28][29][30]).
type Throttler struct {
	n       *node.Node
	cfg     ThrottlerConfig
	cur     int
	history []ThrottlerDecision
}

// NewThrottler builds the controller and grants the full mask initially.
func NewThrottler(n *node.Node, cfg ThrottlerConfig) (*Throttler, error) {
	if n == nil {
		return nil, fmt.Errorf("policy: nil node")
	}
	if cfg.Group == "" {
		return nil, fmt.Errorf("policy: throttler needs a group")
	}
	if _, err := n.Cgroups().Group(cfg.Group); err != nil {
		return nil, err
	}
	if cfg.MinCores < 1 || cfg.MaxCores < cfg.MinCores || cfg.MaxCores > cfg.Pool.Len() {
		return nil, fmt.Errorf("policy: throttler core bounds [%d, %d] over %d cores",
			cfg.MinCores, cfg.MaxCores, cfg.Pool.Len())
	}
	if cfg.SamplePeriod <= 0 {
		return nil, fmt.Errorf("policy: SamplePeriod = %v", cfg.SamplePeriod)
	}
	t := &Throttler{n: n, cfg: cfg, cur: cfg.MaxCores}
	if err := n.Cgroups().SetCPUs(cfg.Group, cfg.Pool.Take(t.cur)); err != nil {
		return nil, err
	}
	return t, nil
}

// Cores returns the currently granted core count.
func (t *Throttler) Cores() int { return t.cur }

// History returns a copy of the per-period decision trace.
func (t *Throttler) History() []ThrottlerDecision {
	return append([]ThrottlerDecision(nil), t.history...)
}

// Control implements sim.Controller.
func (t *Throttler) Control(now float64) {
	s := t.n.Monitor().Window()
	if s.Elapsed == 0 {
		return
	}
	bw := s.SocketBW[t.cfg.Socket]
	lat := s.SocketLatency[t.cfg.Socket]
	w := t.cfg.Watermarks
	switch {
	case bw > w.SocketBWHigh || lat > w.LatencyHigh:
		if t.cur > t.cfg.MinCores {
			t.cur--
		}
	case bw < w.SocketBWLow && lat < w.LatencyLow:
		if t.cur < t.cfg.MaxCores {
			t.cur++
		}
	}
	if err := t.n.Cgroups().SetCPUs(t.cfg.Group, t.cfg.Pool.Take(t.cur)); err != nil {
		panic(fmt.Sprintf("policy: throttler enforce: %v", err))
	}
	t.history = append(t.history, ThrottlerDecision{
		Time: now, SocketBW: bw, Latency: lat, Cores: t.cur,
	})
	if rec := t.n.Events(); rec != nil {
		rec.Emit(now, events.ThrottlerActuate, "throttler", map[string]any{
			"socket_bw": bw, "latency": lat, "cores": t.cur,
		})
	}
}
