package policy

import (
	"fmt"

	"kelp/internal/cpu"
	"kelp/internal/events"
	"kelp/internal/node"
	"kelp/internal/perfmon"
)

// ThrottlerWatermarks are CoreThrottle's thresholds. Prior work (Heracles,
// Dirigent, CPI^2) reacts to socket bandwidth and latency only — it predates
// the distress-signal measurement, which is exactly the gap Kelp exploits.
type ThrottlerWatermarks struct {
	SocketBWHigh, SocketBWLow float64
	LatencyHigh, LatencyLow   float64
}

// DefaultThrottlerWatermarks mirrors the conservative Kelp thresholds at
// socket scope.
func DefaultThrottlerWatermarks(socketBW, baseLatency float64) ThrottlerWatermarks {
	return ThrottlerWatermarks{
		SocketBWHigh: 0.75 * socketBW,
		SocketBWLow:  0.50 * socketBW,
		LatencyHigh:  3.0 * baseLatency,
		LatencyLow:   2.0 * baseLatency,
	}
}

// ThrottlerConfig parameterizes the CoreThrottle controller.
type ThrottlerConfig struct {
	Socket       int
	Group        string
	Pool         cpu.Set
	MinCores     int
	MaxCores     int
	Watermarks   ThrottlerWatermarks
	SamplePeriod float64
	// DegradeAfter / RecoverAfter are the watchdog thresholds (K faulted
	// periods to enter fail-safe, J clean ones to leave); 0 selects the
	// core package defaults.
	DegradeAfter, RecoverAfter int
}

// ThrottlerDecision records one control period for the actuator plots
// (Fig. 11a, Fig. 12a).
type ThrottlerDecision struct {
	Time     float64
	SocketBW float64
	Latency  float64
	Cores    int
}

// Throttler is the CoreThrottle runtime: a feedback loop that narrows or
// widens the low-priority tasks' CPU mask (paper §V-A, configuration CT,
// mimicking [28][29][30]).
type Throttler struct {
	n       *node.Node
	cfg     ThrottlerConfig
	cur     int
	deg     degradeState
	bounds  perfmon.Bounds
	history []ThrottlerDecision
}

// NewThrottler builds the controller and grants the full mask initially.
func NewThrottler(n *node.Node, cfg ThrottlerConfig) (*Throttler, error) {
	if n == nil {
		return nil, fmt.Errorf("policy: nil node")
	}
	if cfg.Group == "" {
		return nil, fmt.Errorf("policy: throttler needs a group")
	}
	if _, err := n.Cgroups().Group(cfg.Group); err != nil {
		return nil, err
	}
	if cfg.MinCores < 1 || cfg.MaxCores < cfg.MinCores || cfg.MaxCores > cfg.Pool.Len() {
		return nil, fmt.Errorf("policy: throttler core bounds [%d, %d] over %d cores",
			cfg.MinCores, cfg.MaxCores, cfg.Pool.Len())
	}
	if cfg.SamplePeriod <= 0 {
		return nil, fmt.Errorf("policy: SamplePeriod = %v", cfg.SamplePeriod)
	}
	if cfg.DegradeAfter < 0 || cfg.RecoverAfter < 0 {
		return nil, fmt.Errorf("policy: throttler degrade thresholds K=%d J=%d",
			cfg.DegradeAfter, cfg.RecoverAfter)
	}
	t := &Throttler{
		n:      n,
		cfg:    cfg,
		cur:    cfg.MaxCores,
		deg:    newDegradeState("throttler", cfg.DegradeAfter, cfg.RecoverAfter),
		bounds: cfg.Watermarks.sanityBounds(),
	}
	if err := n.Cgroups().SetCPUs(cfg.Group, cfg.Pool.Take(t.cur)); err != nil {
		return nil, err
	}
	return t, nil
}

// Cores returns the currently granted core count.
func (t *Throttler) Cores() int { return t.cur }

// Degraded reports whether the controller is in fail-safe mode.
func (t *Throttler) Degraded() bool { return t.deg.guard.Degraded() }

// History returns a copy of the per-period decision trace.
func (t *Throttler) History() []ThrottlerDecision {
	return append([]ThrottlerDecision(nil), t.history...)
}

// Control implements sim.Controller, hardened against a faulty signal
// path: samples are sanitized before use, enforcement failures are scored
// instead of crashing, and after K consecutive faulted periods the
// controller pins the minimum core grant until J clean periods pass.
func (t *Throttler) Control(now float64) {
	if t.n.Faults().Stall(now, "throttler") {
		t.fault(now)
		return
	}
	s := t.n.Monitor().Window()
	if s.Elapsed == 0 {
		return
	}
	s, dropped := t.n.Faults().PerturbSample(now, "throttler", s)
	if dropped {
		t.fault(now)
		return
	}
	if err := s.Check(t.bounds); err != nil {
		t.deg.reject(t.n, now, err)
		t.fault(now)
		return
	}
	if t.deg.guard.Degraded() {
		if err := t.enforceFailSafe(now); err != nil {
			t.deg.actuateError(t.n, now, err)
			t.deg.guard.Fault()
			return
		}
		t.deg.clean(t.n, now)
		return
	}
	bw := s.SocketBW[t.cfg.Socket]
	lat := s.SocketLatency[t.cfg.Socket]
	w := t.cfg.Watermarks
	switch {
	case bw > w.SocketBWHigh || lat > w.LatencyHigh:
		if t.cur > t.cfg.MinCores {
			t.cur--
		}
	case bw < w.SocketBWLow && lat < w.LatencyLow:
		if t.cur < t.cfg.MaxCores {
			t.cur++
		}
	}
	if err := t.enforce(now); err != nil {
		t.deg.actuateError(t.n, now, err)
		t.fault(now)
		return
	}
	t.deg.clean(t.n, now)
	t.history = append(t.history, ThrottlerDecision{
		Time: now, SocketBW: bw, Latency: lat, Cores: t.cur,
	})
	if rec := t.n.Events(); rec != nil {
		rec.Emit(now, events.ThrottlerActuate, "throttler", map[string]any{
			"socket_bw": bw, "latency": lat, "cores": t.cur,
		})
	}
}

// enforce pushes the current grant through the (possibly fault-gated)
// cgroup interface.
func (t *Throttler) enforce(now float64) error {
	return t.n.Faults().SetCPUs(now, t.n.Cgroups(), t.cfg.Group, t.cfg.Pool.Take(t.cur))
}

// enforceFailSafe pins the minimum core grant — the conservative stance
// while the feedback loop cannot be trusted.
func (t *Throttler) enforceFailSafe(now float64) error {
	t.cur = t.cfg.MinCores
	return t.enforce(now)
}

// fault scores one faulted period, entering fail-safe after K in a row.
func (t *Throttler) fault(now float64) {
	if !t.deg.fault(t.n, now) {
		return
	}
	if err := t.enforceFailSafe(now); err != nil {
		t.deg.actuateError(t.n, now, err)
	}
}
