package policy

import (
	"bytes"
	"encoding/gob"

	"kelp/internal/core"
)

// ThrottlerState and MBAState are opaque snapshot handles with unexported
// fields; explicit gob hooks let the durability layer persist them across a
// process restart. core.Guard provides its own hooks, so the nested degrade
// guard round-trips exactly.

type degradeWire struct {
	Name  string
	Guard core.Guard
}

type throttlerStateWire struct {
	Cur     int
	Deg     degradeWire
	History []ThrottlerDecision
}

// GobEncode implements gob.GobEncoder.
func (s ThrottlerState) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(throttlerStateWire{
		Cur: s.cur, Deg: degradeWire{Name: s.deg.name, Guard: s.deg.guard},
		History: s.history,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (s *ThrottlerState) GobDecode(data []byte) error {
	var w throttlerStateWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	s.cur = w.Cur
	s.deg = degradeState{name: w.Deg.Name, guard: w.Deg.Guard}
	s.history = w.History
	return nil
}

type mbaStateWire struct {
	Cur     int
	Deg     degradeWire
	History []MBADecision
}

// GobEncode implements gob.GobEncoder.
func (s MBAState) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(mbaStateWire{
		Cur: s.cur, Deg: degradeWire{Name: s.deg.name, Guard: s.deg.guard},
		History: s.history,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (s *MBAState) GobDecode(data []byte) error {
	var w mbaStateWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	s.cur = w.Cur
	s.deg = degradeState{name: w.Deg.Name, guard: w.Deg.Guard}
	s.history = w.History
	return nil
}
