package policy

import (
	"testing"

	"kelp/internal/accel"
	"kelp/internal/cgroup"
	"kelp/internal/node"
	"kelp/internal/sim"
	"kelp/internal/workload"
)

func newGPUPlatform() accel.Platform { return accel.NewGPU() }

func newNode(t *testing.T) *node.Node {
	t.Helper()
	n, err := node.New(node.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{Baseline: "BL", CoreThrottle: "CT", KelpSubdomain: "KP-SD", Kelp: "KP", Kind(9): "Kind(9)"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if len(Kinds()) != 4 {
		t.Error("Kinds() should list all four configurations")
	}
}

func TestOptionsValidate(t *testing.T) {
	n := newNode(t)
	if err := DefaultOptions().Validate(n); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Options){
		func(o *Options) { o.Socket = 9 },
		func(o *Options) { o.MLCores = 0 },
		func(o *Options) { o.MLCores = 99 },
		func(o *Options) { o.CATWays = -1 },
		func(o *Options) { o.CATWays = 99 },
		func(o *Options) { o.SamplePeriod = 0 },
		func(o *Options) { o.MinLowCores = 0 },
		func(o *Options) { o.MaxBackfillCores = 99 },
	}
	for i, mut := range mutations {
		o := DefaultOptions()
		mut(&o)
		if err := o.Validate(n); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestApplyBaseline(t *testing.T) {
	n := newNode(t)
	a, err := Apply(n, Baseline, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime != nil || a.Throttler != nil || a.Backfill != "" {
		t.Errorf("baseline should have no controller: %+v", a)
	}
	if n.Memory().Config().SNCEnabled {
		t.Error("baseline should run with SNC off")
	}
	ml, _ := n.Cgroups().Group(a.ML)
	low, _ := n.Cgroups().Group(a.Low)
	if ml.CPUs().Len() != 6 {
		t.Errorf("ML cores = %d", ml.CPUs().Len())
	}
	if low.CPUs().Len() != 22 {
		t.Errorf("low cores = %d, want 22", low.CPUs().Len())
	}
	if ml.LLCWays() != 0 {
		t.Error("baseline should not partition the LLC")
	}
	if len(ml.CPUs().Intersect(low.CPUs())) != 0 {
		t.Error("ML and low cpusets overlap")
	}
}

func TestApplyCoreThrottle(t *testing.T) {
	n := newNode(t)
	a, err := Apply(n, CoreThrottle, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Throttler == nil {
		t.Fatal("CT should install a throttler")
	}
	ml, _ := n.Cgroups().Group(a.ML)
	low, _ := n.Cgroups().Group(a.Low)
	if ml.LLCWays() == 0 || low.LLCWays() == 0 {
		t.Error("CT should partition the LLC via CAT")
	}
	if ml.LLCWays()&low.LLCWays() != 0 {
		t.Error("CAT partitions overlap")
	}
	if n.Memory().Config().SNCEnabled {
		t.Error("CT runs with SNC off")
	}
}

func TestApplyKelpSubdomain(t *testing.T) {
	n := newNode(t)
	a, err := Apply(n, KelpSubdomain, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime == nil {
		t.Fatal("KP-SD should install the Kelp runtime")
	}
	if a.Backfill != "" {
		t.Error("KP-SD must not backfill")
	}
	if !n.Memory().Config().SNCEnabled {
		t.Error("KP-SD requires SNC")
	}
	ml, _ := n.Cgroups().Group(a.ML)
	low, _ := n.Cgroups().Group(a.Low)
	if ml.MemPolicy().Subdomain != 0 || low.MemPolicy().Subdomain != 1 {
		t.Errorf("subdomain placement wrong: ml=%+v low=%+v", ml.MemPolicy(), low.MemPolicy())
	}
	// ML cores all in subdomain 0, low cores all in subdomain 1.
	for _, id := range ml.CPUs() {
		c, _ := n.Processor().Core(id)
		if c.Subdomain != 0 {
			t.Errorf("ML core %d in subdomain %d", id, c.Subdomain)
		}
	}
	for _, id := range low.CPUs() {
		c, _ := n.Processor().Core(id)
		if c.Subdomain != 1 {
			t.Errorf("low core %d in subdomain %d", id, c.Subdomain)
		}
	}
}

func TestApplyKelp(t *testing.T) {
	n := newNode(t)
	a, err := Apply(n, Kelp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime == nil || a.Backfill == "" {
		t.Fatalf("KP should install runtime + backfill group: %+v", a)
	}
	bf, err := n.Cgroups().Group(a.Backfill)
	if err != nil {
		t.Fatal(err)
	}
	if bf.MemPolicy().Subdomain != 0 {
		t.Errorf("backfill memory should live in the high subdomain: %+v", bf.MemPolicy())
	}
	if bf.CPUs().Len() != 0 {
		t.Error("backfill should start with zero cores")
	}
}

func TestBackfillNeverTouchesMLCores(t *testing.T) {
	n := newNode(t)
	o := DefaultOptions()
	a, err := Apply(n, Kelp, o)
	if err != nil {
		t.Fatal(err)
	}
	// Calm system so the runtime boosts backfill to the max.
	calm, _ := workload.NewLoop("calm", workload.LoopConfig{
		Threads: 1, UnitWork: 1e-3,
		Mem: workload.MemProfile{StreamBWPerCore: 0.05 * workload.GB},
	})
	if err := n.AddTask(calm, a.Low); err != nil {
		t.Fatal(err)
	}
	n.Run(3 * sim.Second)
	if a.Runtime.BackfillCores() != o.MaxBackfillCores {
		t.Fatalf("backfill = %d, want %d", a.Runtime.BackfillCores(), o.MaxBackfillCores)
	}
	ml, _ := n.Cgroups().Group(a.ML)
	bf, _ := n.Cgroups().Group(a.Backfill)
	if overlap := ml.CPUs().Intersect(bf.CPUs()); overlap.Len() != 0 {
		t.Errorf("backfill stole ML cores: %v", overlap)
	}
}

func TestThrottlerValidation(t *testing.T) {
	n := newNode(t)
	if _, err := n.Cgroups().Create("g", 0); err != nil {
		t.Fatal(err)
	}
	pool := n.Processor().SocketCores(0)
	good := ThrottlerConfig{
		Socket: 0, Group: "g", Pool: pool, MinCores: 1, MaxCores: pool.Len(),
		Watermarks:   DefaultThrottlerWatermarks(76.8e9, 90e-9),
		SamplePeriod: 0.1,
	}
	if _, err := NewThrottler(n, good); err != nil {
		t.Fatal(err)
	}
	bad := []func(*ThrottlerConfig){
		func(c *ThrottlerConfig) { c.Group = "" },
		func(c *ThrottlerConfig) { c.Group = "ghost" },
		func(c *ThrottlerConfig) { c.MinCores = 0 },
		func(c *ThrottlerConfig) { c.MaxCores = 0 },
		func(c *ThrottlerConfig) { c.MaxCores = pool.Len() + 1 },
		func(c *ThrottlerConfig) { c.SamplePeriod = 0 },
	}
	for i, mut := range bad {
		c := good
		mut(&c)
		if _, err := NewThrottler(n, c); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := NewThrottler(nil, good); err == nil {
		t.Error("nil node accepted")
	}
}

func TestThrottlerReactsToAggression(t *testing.T) {
	n := newNode(t)
	a, err := Apply(n, CoreThrottle, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	agg, _ := workload.NewDRAMAggressor(workload.LevelHigh)
	if err := n.AddTask(agg, a.Low); err != nil {
		t.Fatal(err)
	}
	start := a.Throttler.Cores()
	n.Run(3 * sim.Second)
	if got := a.Throttler.Cores(); got >= start {
		t.Errorf("throttler never reduced cores: %d -> %d", start, got)
	}
	if len(a.Throttler.History()) == 0 {
		t.Error("no decisions recorded")
	}
}

func TestThrottlerRecoversWhenCalm(t *testing.T) {
	n := newNode(t)
	a, err := Apply(n, CoreThrottle, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	calm, _ := workload.NewLoop("calm", workload.LoopConfig{
		Threads: 2, UnitWork: 1e-3,
		Mem: workload.MemProfile{StreamBWPerCore: 0.05 * workload.GB},
	})
	if err := n.AddTask(calm, a.Low); err != nil {
		t.Fatal(err)
	}
	n.Run(2 * sim.Second)
	if got, max := a.Throttler.Cores(), 22; got != max {
		t.Errorf("cores = %d under calm load, want %d", got, max)
	}
}

func TestApplyFineGrained(t *testing.T) {
	n := newNode(t)
	a, err := Apply(n, FineGrained, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime != nil || a.Throttler != nil || a.MBA != nil {
		t.Error("HW-FG needs no software controller")
	}
	if !n.Memory().Config().FineGrainedQoS {
		t.Error("fine-grained QoS not enabled")
	}
	if n.Memory().Config().SNCEnabled {
		t.Error("HW-FG runs with SNC off (no fragmentation)")
	}
	ml, _ := n.Cgroups().Group(a.ML)
	if ml.Priority() != cgroup.High {
		t.Error("ML group must be high priority for request-level QoS")
	}
	// End to end: the hardware protects the ML task without any runtime.
	mlTask, _ := workload.NewCNN3(newGPUPlatform())
	if err := n.AddTask(mlTask, a.ML); err != nil {
		t.Fatal(err)
	}
	agg, _ := workload.NewDRAMAggressor(workload.LevelHigh)
	if err := n.AddTask(agg, a.Low); err != nil {
		t.Fatal(err)
	}
	n.Run(1 * sim.Second)
	r, err := n.LastRates("CNN3")
	if err != nil {
		t.Fatal(err)
	}
	if r.BWFraction < 0.99 {
		t.Errorf("ML bandwidth contended under HW-FG: %+v", r)
	}
	if r.Backpressure < 1 {
		t.Errorf("ML backpressured under HW-FG: %+v", r)
	}
	ra, _ := n.LastRates(agg.Name())
	if ra.BWFraction > 0.9 {
		t.Errorf("aggressor uncontended under HW-FG: %+v", ra)
	}
}

func TestApplyMBAThrottle(t *testing.T) {
	n := newNode(t)
	a, err := Apply(n, MBAThrottle, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.MBA == nil {
		t.Fatal("MBAThrottle should install the MBA controller")
	}
	if a.MBA.Percent() != 100 {
		t.Errorf("initial MBA = %d, want 100", a.MBA.Percent())
	}
	agg, _ := workload.NewDRAMAggressor(workload.LevelHigh)
	if err := n.AddTask(agg, a.Low); err != nil {
		t.Fatal(err)
	}
	n.Run(3 * sim.Second)
	if got := a.MBA.Percent(); got >= 100 {
		t.Errorf("MBA never throttled under DRAM-H: %d%%", got)
	}
	if len(a.MBA.History()) == 0 {
		t.Error("no decisions recorded")
	}
}

// TestMBAHurtsCacheResidentWork demonstrates the paper's §VI-D criticism:
// the MBA rate controller throttles LLC-served requests too, so throttling
// a cache-resident task costs it throughput even though it generates
// almost no DRAM traffic.
func TestMBAHurtsCacheResidentWork(t *testing.T) {
	run := func(mba int) float64 {
		n := newNode(t)
		if _, err := n.Cgroups().Create("g", cgroup.Low); err != nil {
			t.Fatal(err)
		}
		if err := n.Cgroups().SetCPUs("g", n.Processor().SocketCores(0).Take(8)); err != nil {
			t.Fatal(err)
		}
		if err := n.Cgroups().SetMBA("g", mba); err != nil {
			t.Fatal(err)
		}
		// An LLC-resident kernel: heavy cache reuse, negligible DRAM.
		l, err := workload.NewLLCAggressor(n.Config().Memory.LLCSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.AddTask(l, "g"); err != nil {
			t.Fatal(err)
		}
		n.Run(500 * sim.Millisecond)
		n.StartMeasurement()
		n.Run(1 * sim.Second)
		return l.Throughput(n.Now())
	}
	full := run(100)
	throttled := run(20)
	if !(throttled < full*0.75) {
		t.Errorf("MBA at 20%% left cache-resident work at %.1f of %.1f — the LLC side effect is missing",
			throttled, full)
	}
}

func TestMBAControllerValidation(t *testing.T) {
	n := newNode(t)
	if _, err := NewMBAController(nil, MBAControllerConfig{}); err == nil {
		t.Error("nil node accepted")
	}
	if _, err := NewMBAController(n, MBAControllerConfig{Group: "ghost", SamplePeriod: 1}); err == nil {
		t.Error("missing group accepted")
	}
	n.Cgroups().Create("g", cgroup.Low)
	if _, err := NewMBAController(n, MBAControllerConfig{Group: "g", SamplePeriod: 0}); err == nil {
		t.Error("zero period accepted")
	}
}

func TestAllKindsIncludesExtensions(t *testing.T) {
	if len(AllKinds()) != 6 {
		t.Errorf("AllKinds = %v", AllKinds())
	}
	if MBAThrottle.String() != "MBA" || FineGrained.String() != "HW-FG" {
		t.Error("extension names wrong")
	}
}

func TestApplyRejectsDuplicateApplication(t *testing.T) {
	n := newNode(t)
	if _, err := Apply(n, Baseline, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(n, Baseline, DefaultOptions()); err == nil {
		t.Error("second Apply on the same node accepted")
	}
}
