package policy

import (
	"kelp/internal/core"
	"kelp/internal/events"
	"kelp/internal/node"
	"kelp/internal/perfmon"
)

// degradeState bundles the degradation watchdog with its event emission
// for the baseline controllers (CoreThrottle, MBA, SLO). The Kelp runtime
// in internal/core carries the same machinery inline; this keeps the three
// policy controllers from each reimplementing it.
type degradeState struct {
	name  string
	guard core.Guard
}

func newDegradeState(name string, k, j int) degradeState {
	return degradeState{name: name, guard: core.NewGuard(k, j)}
}

// fault scores one faulted period and reports whether the controller just
// entered fail-safe mode (emitting degrade.enter when it did). The caller
// applies its own fail-safe configuration on a true return.
func (d *degradeState) fault(n *node.Node, now float64) (entered bool) {
	if !d.guard.Fault() {
		return false
	}
	if rec := n.Events(); rec.Enabled() {
		rec.Emit(now, events.DegradeEnter, d.name, map[string]any{
			"controller":         d.name,
			"consecutive_faults": d.guard.EnterAfter,
		})
	}
	return true
}

// clean scores one clean period, emitting degrade.exit when the controller
// just recovered.
func (d *degradeState) clean(n *node.Node, now float64) (exited bool) {
	if !d.guard.Clean() {
		return false
	}
	if rec := n.Events(); rec.Enabled() {
		rec.Emit(now, events.DegradeExit, d.name, map[string]any{
			"controller":    d.name,
			"clean_periods": d.guard.ExitAfter,
		})
	}
	return true
}

// reject emits sensor.reject for a sample the sanitizer refused.
func (d *degradeState) reject(n *node.Node, now float64, err error) {
	if rec := n.Events(); rec.Enabled() {
		rec.Emit(now, events.SensorReject, d.name, map[string]any{
			"reason": err.Error(),
		})
	}
}

// actuateError emits actuate.error for an enforcement write that failed
// after read-back verification and retry.
func (d *degradeState) actuateError(n *node.Node, now float64, err error) {
	if rec := n.Events(); rec.Enabled() {
		rec.Emit(now, events.ActuateError, d.name, map[string]any{
			"error": err.Error(),
		})
	}
}

// sanityBounds derives sample plausibility limits from the throttler-style
// watermarks, mirroring core.Watermarks.SanityBounds.
func (w ThrottlerWatermarks) sanityBounds() perfmon.Bounds {
	return perfmon.Bounds{
		MaxBW:      16 * w.SocketBWHigh,
		MaxLatency: 64 * w.LatencyHigh,
	}
}
