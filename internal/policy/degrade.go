package policy

import (
	"kelp/internal/core"
	"kelp/internal/events"
	"kelp/internal/node"
	"kelp/internal/perfmon"
)

// degradeState bundles the degradation watchdog with its event emission
// for the baseline controllers (CoreThrottle, MBA, SLO). The Kelp runtime
// in internal/core carries the same machinery inline; this keeps the three
// policy controllers from each reimplementing it.
type degradeState struct {
	name  string
	guard core.Guard
}

func newDegradeState(name string, k, j int) degradeState {
	return degradeState{name: name, guard: core.NewGuard(k, j)}
}

// fault scores one faulted period and reports whether the controller just
// entered fail-safe mode (emitting degrade.enter when it did). The caller
// applies its own fail-safe configuration on a true return.
func (d *degradeState) fault(n *node.Node, now float64) (entered bool) {
	if !d.guard.Fault() {
		return false
	}
	if rec := n.Events(); rec.Enabled() {
		rec.Emit(now, events.DegradeEnter, d.name, map[string]any{
			"controller":         d.name,
			"consecutive_faults": d.guard.EnterAfter,
		})
	}
	return true
}

// clean scores one clean period, emitting degrade.exit when the controller
// just recovered.
func (d *degradeState) clean(n *node.Node, now float64) (exited bool) {
	if !d.guard.Clean() {
		return false
	}
	if rec := n.Events(); rec.Enabled() {
		rec.Emit(now, events.DegradeExit, d.name, map[string]any{
			"controller":    d.name,
			"clean_periods": d.guard.ExitAfter,
		})
	}
	return true
}

// reject emits sensor.reject for a sample the sanitizer refused.
func (d *degradeState) reject(n *node.Node, now float64, err error) {
	if rec := n.Events(); rec.Enabled() {
		rec.Emit(now, events.SensorReject, d.name, map[string]any{
			"reason": err.Error(),
		})
	}
}

// actuateError emits actuate.error for an enforcement write that failed
// after read-back verification and retry.
func (d *degradeState) actuateError(n *node.Node, now float64, err error) {
	if rec := n.Events(); rec.Enabled() {
		rec.Emit(now, events.ActuateError, d.name, map[string]any{
			"error": err.Error(),
		})
	}
}

// ThrottlerState is an opaque snapshot of a Throttler's control state, used
// by the experiments layer's warm-started sweep cells.
type ThrottlerState struct {
	cur     int
	deg     degradeState
	history []ThrottlerDecision
}

// Snapshot captures the throttler's control state.
func (t *Throttler) Snapshot() ThrottlerState {
	return ThrottlerState{
		cur:     t.cur,
		deg:     t.deg,
		history: append([]ThrottlerDecision(nil), t.history...),
	}
}

// Restore installs a snapshot taken by Snapshot on a throttler built from
// the same configuration. It does not actuate: the node snapshot restores
// the cgroup state the throttler had enforced.
func (t *Throttler) Restore(st ThrottlerState) {
	t.cur = st.cur
	t.deg = st.deg
	t.history = append(t.history[:0], st.history...)
}

// MBAState is an opaque snapshot of an MBAController's control state.
type MBAState struct {
	cur     int
	deg     degradeState
	history []MBADecision
}

// Snapshot captures the MBA controller's control state.
func (c *MBAController) Snapshot() MBAState {
	return MBAState{
		cur:     c.cur,
		deg:     c.deg,
		history: append([]MBADecision(nil), c.history...),
	}
}

// Restore installs a snapshot taken by Snapshot on a controller built from
// the same configuration.
func (c *MBAController) Restore(st MBAState) {
	c.cur = st.cur
	c.deg = st.deg
	c.history = append(c.history[:0], st.history...)
}

// sanityBounds derives sample plausibility limits from the throttler-style
// watermarks, mirroring core.Watermarks.SanityBounds.
func (w ThrottlerWatermarks) sanityBounds() perfmon.Bounds {
	return perfmon.Bounds{
		MaxBW:      16 * w.SocketBWHigh,
		MaxLatency: 64 * w.LatencyHigh,
	}
}
