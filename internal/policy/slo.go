package policy

import (
	"fmt"
	"math"

	"kelp/internal/cpu"
	"kelp/internal/node"
	"kelp/internal/workload"
)

// SLODecision records one control period of the latency-target controller.
type SLODecision struct {
	Time    float64
	TailP95 float64
	Cores   int
}

// SLOControllerConfig parameterizes the Heracles-style controller.
type SLOControllerConfig struct {
	// Server is the latency-critical inference task the SLO protects.
	Server *workload.Inference
	// TargetP95 is the latency objective, seconds.
	TargetP95 float64
	// Group / Pool / bounds define the low-priority core actuator.
	Group              string
	Pool               cpu.Set
	MinCores, MaxCores int
	SamplePeriod       float64
	// Headroom is the fraction of the target below which the controller
	// grows the low-priority allocation again (Heracles' "slack").
	Headroom float64
	// DegradeAfter / RecoverAfter are the watchdog thresholds; 0 selects
	// the core package defaults.
	DegradeAfter, RecoverAfter int
}

// SLOController is a latency-target feedback loop in the style of Heracles
// (the paper's [28]) and Dirigent [29]: it samples the protected server's
// recent tail latency and revokes or restores the colocated tasks' cores to
// keep the tail under the objective. Unlike Kelp it needs an explicit
// application-level SLO signal, and like CoreThrottle it can only react a
// sampling period after the damage is visible in the tail.
type SLOController struct {
	n       *node.Node
	cfg     SLOControllerConfig
	cur     int
	deg     degradeState
	history []SLODecision
}

// NewSLOController builds the controller with the full mask granted.
func NewSLOController(n *node.Node, cfg SLOControllerConfig) (*SLOController, error) {
	if n == nil {
		return nil, fmt.Errorf("policy: nil node")
	}
	if cfg.Server == nil {
		return nil, fmt.Errorf("policy: SLO controller needs a server")
	}
	if cfg.TargetP95 <= 0 {
		return nil, fmt.Errorf("policy: TargetP95 = %v", cfg.TargetP95)
	}
	if _, err := n.Cgroups().Group(cfg.Group); err != nil {
		return nil, err
	}
	if cfg.MinCores < 1 || cfg.MaxCores < cfg.MinCores || cfg.MaxCores > cfg.Pool.Len() {
		return nil, fmt.Errorf("policy: SLO core bounds [%d, %d] over %d cores",
			cfg.MinCores, cfg.MaxCores, cfg.Pool.Len())
	}
	if cfg.SamplePeriod <= 0 {
		return nil, fmt.Errorf("policy: SamplePeriod = %v", cfg.SamplePeriod)
	}
	if cfg.Headroom <= 0 || cfg.Headroom >= 1 {
		return nil, fmt.Errorf("policy: Headroom = %v not in (0,1)", cfg.Headroom)
	}
	if cfg.DegradeAfter < 0 || cfg.RecoverAfter < 0 {
		return nil, fmt.Errorf("policy: SLO degrade thresholds K=%d J=%d",
			cfg.DegradeAfter, cfg.RecoverAfter)
	}
	c := &SLOController{
		n:   n,
		cfg: cfg,
		cur: cfg.MaxCores,
		deg: newDegradeState("slo", cfg.DegradeAfter, cfg.RecoverAfter),
	}
	if err := n.Cgroups().SetCPUs(cfg.Group, cfg.Pool.Take(c.cur)); err != nil {
		return nil, err
	}
	return c, nil
}

// Cores returns the currently granted core count.
func (c *SLOController) Cores() int { return c.cur }

// Degraded reports whether the controller is in fail-safe mode.
func (c *SLOController) Degraded() bool { return c.deg.guard.Degraded() }

// History returns per-period decisions (do not mutate).
func (c *SLOController) History() []SLODecision { return c.history }

// Control implements sim.Controller. The SLO controller reads the
// protected server's tail latency rather than the PMU, so sensor
// perturbation does not apply; it still sanitizes the tail reading, routes
// its core writes through the fault gate, and degrades to the minimum
// grant after K consecutive faulted periods.
func (c *SLOController) Control(now float64) {
	if c.n.Faults().Stall(now, "slo") {
		c.fault(now)
		return
	}
	tail := c.cfg.Server.WindowTailLatency(0.95)
	if tail == 0 {
		return // no completions in the window: nothing to react to
	}
	if math.IsNaN(tail) || math.IsInf(tail, 0) || tail < 0 {
		c.deg.reject(c.n, now, fmt.Errorf("policy: tail p95 = %v", tail))
		c.fault(now)
		return
	}
	if c.deg.guard.Degraded() {
		if err := c.enforceFailSafe(now); err != nil {
			c.deg.actuateError(c.n, now, err)
			c.deg.guard.Fault()
			return
		}
		c.deg.clean(c.n, now)
		return
	}
	switch {
	case tail > c.cfg.TargetP95:
		// SLO violation: revoke aggressively (half the allocation), the
		// way Heracles disables best-effort growth on violations.
		c.cur /= 2
		if c.cur < c.cfg.MinCores {
			c.cur = c.cfg.MinCores
		}
	case tail < c.cfg.TargetP95*(1-c.cfg.Headroom):
		if c.cur < c.cfg.MaxCores {
			c.cur++
		}
	}
	if err := c.enforce(now); err != nil {
		c.deg.actuateError(c.n, now, err)
		c.fault(now)
		return
	}
	c.deg.clean(c.n, now)
	c.history = append(c.history, SLODecision{Time: now, TailP95: tail, Cores: c.cur})
}

// enforce pushes the current grant through the (possibly fault-gated)
// cgroup interface.
func (c *SLOController) enforce(now float64) error {
	return c.n.Faults().SetCPUs(now, c.n.Cgroups(), c.cfg.Group, c.cfg.Pool.Take(c.cur))
}

// enforceFailSafe pins the minimum core grant.
func (c *SLOController) enforceFailSafe(now float64) error {
	c.cur = c.cfg.MinCores
	return c.enforce(now)
}

// fault scores one faulted period, entering fail-safe after K in a row.
func (c *SLOController) fault(now float64) {
	if !c.deg.fault(c.n, now) {
		return
	}
	if err := c.enforceFailSafe(now); err != nil {
		c.deg.actuateError(c.n, now, err)
	}
}
