package policy

import (
	"testing"

	"kelp/internal/accel"
	"kelp/internal/cgroup"
	"kelp/internal/node"
	"kelp/internal/sim"
	"kelp/internal/workload"
)

// sloSetup builds an RNN1 server under Baseline-style placement with a CPUML
// antagonist and attaches the SLO controller with the given target.
func sloSetup(t *testing.T, target float64) (*node.Node, *workload.Inference, *SLOController) {
	t.Helper()
	n := newNode(t)
	cg := n.Cgroups()
	if _, err := cg.Create("ml", cgroup.High); err != nil {
		t.Fatal(err)
	}
	if err := cg.SetCPUs("ml", n.Processor().SocketCores(0).Take(2)); err != nil {
		t.Fatal(err)
	}
	dev, err := accel.NewDevice(accel.NewTPU())
	if err != nil {
		t.Fatal(err)
	}
	server, err := workload.NewRNN1(dev, n.Engine().RNG().Stream("rnn1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddTask(server, "ml"); err != nil {
		t.Fatal(err)
	}

	if _, err := cg.Create("low", cgroup.Low); err != nil {
		t.Fatal(err)
	}
	pool := n.Processor().SocketCores(0).Minus(n.Processor().SocketCores(0).Take(2))
	if err := cg.SetCPUs("low", pool); err != nil {
		t.Fatal(err)
	}
	agg, err := workload.NewDRAMAggressor(workload.LevelHigh)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddTask(agg, "low"); err != nil {
		t.Fatal(err)
	}

	ctl, err := NewSLOController(n, SLOControllerConfig{
		Server:       server,
		TargetP95:    target,
		Group:        "low",
		Pool:         pool,
		MinCores:     2,
		MaxCores:     pool.Len(),
		SamplePeriod: 0.1,
		Headroom:     0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Engine().AddController("slo", 0.1, ctl); err != nil {
		t.Fatal(err)
	}
	return n, server, ctl
}

func TestSLOControllerValidation(t *testing.T) {
	n := newNode(t)
	n.Cgroups().Create("g", cgroup.Low)
	pool := n.Processor().SocketCores(0)
	dev, _ := accel.NewDevice(accel.NewTPU())
	server, _ := workload.NewRNN1(dev, nil)
	good := SLOControllerConfig{
		Server: server, TargetP95: 0.02, Group: "g", Pool: pool,
		MinCores: 1, MaxCores: pool.Len(), SamplePeriod: 0.1, Headroom: 0.3,
	}
	if _, err := NewSLOController(n, good); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*SLOControllerConfig){
		func(c *SLOControllerConfig) { c.Server = nil },
		func(c *SLOControllerConfig) { c.TargetP95 = 0 },
		func(c *SLOControllerConfig) { c.Group = "ghost" },
		func(c *SLOControllerConfig) { c.MinCores = 0 },
		func(c *SLOControllerConfig) { c.MaxCores = pool.Len() + 1 },
		func(c *SLOControllerConfig) { c.SamplePeriod = 0 },
		func(c *SLOControllerConfig) { c.Headroom = 1 },
	}
	for i, mut := range mutations {
		c := good
		mut(&c)
		if _, err := NewSLOController(n, c); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := NewSLOController(nil, good); err == nil {
		t.Error("nil node accepted")
	}
}

func TestSLOControllerEnforcesTarget(t *testing.T) {
	// Closed-loop RNN1's structural p95 floor is pipeline depth over
	// throughput (~20 ms); under DRAM-H the tail inflates toward ~24 ms.
	// A 22 ms objective is feasible only by revoking antagonist cores.
	n, server, ctl := sloSetup(t, 0.022)
	n.Run(2 * sim.Second)
	n.StartMeasurement()
	n.Run(2 * sim.Second)
	if got := ctl.Cores(); got >= 20 {
		t.Errorf("controller kept %d cores despite SLO pressure", got)
	}
	tail := server.TailLatency(0.95)
	if tail > 0.022*1.1 {
		t.Errorf("p95 = %.4fs, want near the 22 ms objective", tail)
	}
	if len(ctl.History()) == 0 {
		t.Error("no decisions recorded")
	}
}

func TestSLOControllerRelaxesUnderLooseTarget(t *testing.T) {
	// A 100 ms objective is trivially met: the antagonist keeps its cores.
	n, _, ctl := sloSetup(t, 0.100)
	n.Run(3 * sim.Second)
	if got := ctl.Cores(); got < 20 {
		t.Errorf("controller revoked to %d cores under a loose SLO", got)
	}
}
