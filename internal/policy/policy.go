// Package policy implements the four system configurations the paper
// evaluates (§V-A):
//
//   - Baseline (BL): priorities exist only in the scheduler; resource
//     contention is unmanaged.
//   - CoreThrottle (CT): the prior-work configuration — LLC partitioning via
//     CAT for the accelerated task plus a feedback loop that throttles the
//     low-priority tasks' core count.
//   - Kelp Subdomain (KP-SD): NUMA subdomains (SNC/CoD) isolate the ML task,
//     and the Kelp runtime manages global backpressure by toggling the low
//     subdomain's L2 prefetchers. No backfilling.
//   - Kelp (KP): KP-SD plus backfilling low-priority tasks into the
//     high-priority subdomain under Algorithm 2's core control.
//
// Apply configures a node's groups, SNC setting, CAT masks, and controller
// for one policy; experiments then attach workloads to the returned groups.
package policy

import (
	"fmt"

	"kelp/internal/cgroup"
	"kelp/internal/core"
	"kelp/internal/node"
)

// Kind selects a system configuration.
type Kind int

// The evaluated configurations. FineGrained is not in the paper's
// evaluation: it realizes the hardware request-level memory isolation the
// paper proposes as future work (§VI-C, §VI-D) and predicts to beat both
// Subdomain (on ML performance) and CoreThrottle/Kelp (on CPU throughput).
const (
	Baseline Kind = iota
	CoreThrottle
	KelpSubdomain
	Kelp
	FineGrained
	// MBAThrottle manages interference with Intel MBA's request rate
	// controller instead of core revocation — the §VI-D alternative whose
	// LLC-bandwidth side effect the paper criticizes.
	MBAThrottle
)

// String returns the paper's abbreviation for the configuration.
func (k Kind) String() string {
	switch k {
	case Baseline:
		return "BL"
	case CoreThrottle:
		return "CT"
	case KelpSubdomain:
		return "KP-SD"
	case Kelp:
		return "KP"
	case FineGrained:
		return "HW-FG"
	case MBAThrottle:
		return "MBA"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists the paper's four evaluated configurations in comparison
// order. The FineGrained extension is opted into explicitly.
func Kinds() []Kind { return []Kind{Baseline, CoreThrottle, KelpSubdomain, Kelp} }

// AllKinds additionally includes the fine-grained future-work
// configuration and the MBA alternative.
func AllKinds() []Kind { return append(Kinds(), FineGrained, MBAThrottle) }

// Options parameterizes policy application.
type Options struct {
	// Socket hosting the accelerated task and its antagonists.
	Socket int
	// MLCores reserved for the accelerated task.
	MLCores int
	// CATWays dedicates this many LLC ways to the ML task under the managed
	// policies (CT, KP-SD, KP). 0 disables CAT.
	CATWays int
	// SamplePeriod for the controllers. The paper samples every 10 s; the
	// simulated sweeps use a shorter period purely to shrink wall-clock
	// time — an ablation bench verifies insensitivity (paper §IV-D).
	SamplePeriod float64
	// MinLowCores is the floor of low-priority cores under throttling.
	MinLowCores int
	// MaxBackfillCores bounds Kelp's backfilling.
	MaxBackfillCores int
	// Watermarks overrides the Kelp runtime's thresholds (nil uses the
	// conservative defaults). This is how a per-application profile
	// (internal/profile) reaches the runtime.
	Watermarks *core.Watermarks
	// DegradeAfter / RecoverAfter are the controllers' degradation
	// watchdog thresholds (K faulted periods to enter fail-safe, J clean
	// ones to leave); 0 selects the core package defaults.
	DegradeAfter, RecoverAfter int
}

// DefaultOptions returns the evaluation defaults: 6 ML cores, 4 dedicated
// ways, 100 ms control period (sim-scaled), floor of 2 low cores, up to 6
// backfilled cores.
func DefaultOptions() Options {
	return Options{
		Socket:           0,
		MLCores:          6,
		CATWays:          4,
		SamplePeriod:     0.1,
		MinLowCores:      2,
		MaxBackfillCores: 6,
	}
}

// Validate reports whether the options fit the node.
func (o Options) Validate(n *node.Node) error {
	topo := n.Processor().Topology()
	if o.Socket < 0 || o.Socket >= topo.Sockets {
		return fmt.Errorf("policy: socket %d out of range", o.Socket)
	}
	perSub := topo.CoresPerSubdomain()
	if o.MLCores < 1 || o.MLCores > perSub {
		return fmt.Errorf("policy: MLCores = %d (subdomain has %d)", o.MLCores, perSub)
	}
	if o.CATWays < 0 || o.CATWays >= n.Config().Memory.LLCWays {
		return fmt.Errorf("policy: CATWays = %d of %d", o.CATWays, n.Config().Memory.LLCWays)
	}
	if o.SamplePeriod <= 0 {
		return fmt.Errorf("policy: SamplePeriod = %v", o.SamplePeriod)
	}
	if o.MinLowCores < 1 {
		return fmt.Errorf("policy: MinLowCores = %d", o.MinLowCores)
	}
	if o.MaxBackfillCores < 0 || o.MaxBackfillCores > perSub-o.MLCores {
		return fmt.Errorf("policy: MaxBackfillCores = %d (subdomain has %d free)",
			o.MaxBackfillCores, perSub-o.MLCores)
	}
	if o.Watermarks != nil {
		if err := o.Watermarks.Validate(); err != nil {
			return err
		}
	}
	if o.DegradeAfter < 0 || o.RecoverAfter < 0 {
		return fmt.Errorf("policy: degrade thresholds K=%d J=%d must be non-negative",
			o.DegradeAfter, o.RecoverAfter)
	}
	return nil
}

// Group names used by every policy.
const (
	MLGroup       = "ml"
	LowGroup      = "low"
	BackfillGroup = "backfill"
)

// Applied describes the configured node.
type Applied struct {
	Kind Kind
	// ML, Low and Backfill are the cgroup names to attach tasks to.
	// Backfill is empty except under KP.
	ML, Low, Backfill string
	// Runtime is the Kelp runtime (KP-SD and KP only).
	Runtime *core.Runtime
	// Throttler is the CoreThrottle controller (CT only).
	Throttler *Throttler
	// MBA is the MBA rate controller (MBAThrottle only).
	MBA *MBAController
}

// Degraded reports whether the policy's controller (if any) is currently
// in fail-safe mode.
func (a *Applied) Degraded() bool {
	if a == nil {
		return false
	}
	switch {
	case a.Runtime != nil:
		return a.Runtime.Degraded()
	case a.Throttler != nil:
		return a.Throttler.Degraded()
	case a.MBA != nil:
		return a.MBA.Degraded()
	}
	return false
}

// Apply configures the node for the policy and registers its controller
// with the node's engine. Call before adding tasks.
func Apply(n *node.Node, k Kind, o Options) (*Applied, error) {
	if err := o.Validate(n); err != nil {
		return nil, err
	}
	cg := n.Cgroups()
	proc := n.Processor()
	memCfg := n.Config().Memory

	mkGroup := func(name string, prio cgroup.Priority) error {
		_, err := cg.Create(name, prio)
		return err
	}
	if err := mkGroup(MLGroup, cgroup.High); err != nil {
		return nil, err
	}
	if err := mkGroup(LowGroup, cgroup.Low); err != nil {
		return nil, err
	}

	a := &Applied{Kind: k, ML: MLGroup, Low: LowGroup}
	mlWays := uint64(0)
	lowWays := uint64(0)
	if o.CATWays > 0 && k != Baseline {
		mlWays = (uint64(1) << uint(o.CATWays)) - 1
		lowWays = memCfg.AllWays() &^ mlWays
	}

	switch k {
	case FineGrained:
		// The future-work configuration: no subdomains, no software
		// controller — the memory controllers prioritize the ML task's
		// requests and direct backpressure at offending threads only.
		// Placement matches Baseline; CAT still protects the LLC.
		n.Memory().SetSNC(false)
		n.Memory().SetFineGrainedQoS(true)
		sockCores := proc.SocketCores(o.Socket)
		if err := cg.SetCPUs(MLGroup, sockCores.Take(o.MLCores)); err != nil {
			return nil, err
		}
		if err := cg.SetCPUs(LowGroup, sockCores.Minus(sockCores.Take(o.MLCores))); err != nil {
			return nil, err
		}
		if err := cg.SetMemPolicy(MLGroup, cgroup.MemPolicy{Socket: o.Socket}); err != nil {
			return nil, err
		}
		if err := cg.SetMemPolicy(LowGroup, cgroup.MemPolicy{Socket: o.Socket}); err != nil {
			return nil, err
		}
		if o.CATWays > 0 {
			if err := cg.SetLLCWays(MLGroup, mlWays); err != nil {
				return nil, err
			}
			if err := cg.SetLLCWays(LowGroup, lowWays); err != nil {
				return nil, err
			}
		}
		return a, nil

	case Baseline, CoreThrottle, MBAThrottle:
		n.Memory().SetSNC(false)
		// ML takes the socket's first cores; low priority gets the rest.
		sockCores := proc.SocketCores(o.Socket)
		if err := cg.SetCPUs(MLGroup, sockCores.Take(o.MLCores)); err != nil {
			return nil, err
		}
		if err := cg.SetCPUs(LowGroup, sockCores.Minus(sockCores.Take(o.MLCores))); err != nil {
			return nil, err
		}
		if err := cg.SetMemPolicy(MLGroup, cgroup.MemPolicy{Socket: o.Socket}); err != nil {
			return nil, err
		}
		if err := cg.SetMemPolicy(LowGroup, cgroup.MemPolicy{Socket: o.Socket}); err != nil {
			return nil, err
		}
		if k == MBAThrottle {
			if err := cg.SetLLCWays(MLGroup, mlWays); err != nil {
				return nil, err
			}
			if err := cg.SetLLCWays(LowGroup, lowWays); err != nil {
				return nil, err
			}
			mc, err := NewMBAController(n, MBAControllerConfig{
				Socket:       o.Socket,
				Group:        LowGroup,
				Watermarks:   DefaultThrottlerWatermarks(memCfg.SocketBW(), memCfg.BaseLatency),
				SamplePeriod: o.SamplePeriod,
				DegradeAfter: o.DegradeAfter,
				RecoverAfter: o.RecoverAfter,
			})
			if err != nil {
				return nil, err
			}
			if err := n.Engine().AddController("mba", o.SamplePeriod, mc); err != nil {
				return nil, err
			}
			a.MBA = mc
		}
		if k == CoreThrottle {
			if err := cg.SetLLCWays(MLGroup, mlWays); err != nil {
				return nil, err
			}
			if err := cg.SetLLCWays(LowGroup, lowWays); err != nil {
				return nil, err
			}
			lowPool := sockCores.Minus(sockCores.Take(o.MLCores))
			th, err := NewThrottler(n, ThrottlerConfig{
				Socket:       o.Socket,
				Group:        LowGroup,
				Pool:         lowPool,
				MinCores:     o.MinLowCores,
				MaxCores:     lowPool.Len(),
				Watermarks:   DefaultThrottlerWatermarks(memCfg.SocketBW(), memCfg.BaseLatency),
				SamplePeriod: o.SamplePeriod,
				DegradeAfter: o.DegradeAfter,
				RecoverAfter: o.RecoverAfter,
			})
			if err != nil {
				return nil, err
			}
			if err := n.Engine().AddController("corethrottle", o.SamplePeriod, th); err != nil {
				return nil, err
			}
			a.Throttler = th
		}
		return a, nil

	case KelpSubdomain, Kelp:
		n.Memory().SetSNC(true)
		hiCores := proc.SubdomainCores(o.Socket, 0)
		loCores := proc.SubdomainCores(o.Socket, 1)
		if err := cg.SetCPUs(MLGroup, hiCores.Take(o.MLCores)); err != nil {
			return nil, err
		}
		if err := cg.SetMemPolicy(MLGroup, cgroup.MemPolicy{Socket: o.Socket, Subdomain: 0}); err != nil {
			return nil, err
		}
		if err := cg.SetCPUs(LowGroup, loCores); err != nil {
			return nil, err
		}
		if err := cg.SetMemPolicy(LowGroup, cgroup.MemPolicy{Socket: o.Socket, Subdomain: 1}); err != nil {
			return nil, err
		}
		if o.CATWays > 0 {
			if err := cg.SetLLCWays(MLGroup, mlWays); err != nil {
				return nil, err
			}
			if err := cg.SetLLCWays(LowGroup, lowWays); err != nil {
				return nil, err
			}
		}
		wm := core.DefaultWatermarks(memCfg.BWPerController, memCfg.BaseLatency)
		if o.Watermarks != nil {
			wm = *o.Watermarks
		}
		kcfg := core.Config{
			Socket:        o.Socket,
			HighSubdomain: 0,
			LowSubdomain:  1,
			LowGroup:      LowGroup,
			Watermarks:    wm,
			MinLowCores:   o.MinLowCores,
			MaxLowCores:   loCores.Len(),
			SamplePeriod:  o.SamplePeriod,
			DegradeAfter:  o.DegradeAfter,
			RecoverAfter:  o.RecoverAfter,
		}
		if k == Kelp {
			if err := mkGroup(BackfillGroup, cgroup.Low); err != nil {
				return nil, err
			}
			if err := cg.SetMemPolicy(BackfillGroup, cgroup.MemPolicy{Socket: o.Socket, Subdomain: 0}); err != nil {
				return nil, err
			}
			if o.CATWays > 0 {
				if err := cg.SetLLCWays(BackfillGroup, lowWays); err != nil {
					return nil, err
				}
			}
			kcfg.BackfillGroup = BackfillGroup
			kcfg.MinBackfillCores = 0
			kcfg.MaxBackfillCores = o.MaxBackfillCores
			a.Backfill = BackfillGroup
		}
		rt, err := core.New(n, kcfg)
		if err != nil {
			return nil, err
		}
		if err := n.Engine().AddController("kelp", o.SamplePeriod, rt); err != nil {
			return nil, err
		}
		a.Runtime = rt
		return a, nil
	}
	return nil, fmt.Errorf("policy: unknown kind %d", int(k))
}
