package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"kelp/internal/accel"
	"kelp/internal/cgroup"
	"kelp/internal/node"
	"kelp/internal/sim"
	"kelp/internal/workload"
)

func TestTrainingStepTime(t *testing.T) {
	cnn1, _ := workload.NewCNN1(accel.NewCloudTPU())
	full, err := TrainingStepTime(cnn1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-cnn1.StandaloneStepTime()) > 1e-12 {
		t.Errorf("full-rate step %v != standalone %v", full, cnn1.StandaloneStepTime())
	}
	half, _ := TrainingStepTime(cnn1, 0.5)
	host := cnn1.StandaloneStepTime() * cnn1.HostShare()
	want := cnn1.StandaloneStepTime() + host
	if math.Abs(half-want) > 1e-12 {
		t.Errorf("half-rate step %v, want %v", half, want)
	}
	if _, err := TrainingStepTime(cnn1, 0); err == nil {
		t.Error("zero factor accepted")
	}
}

// TestSimulationMatchesAnalyticTraining is the core cross-validation: a
// training task simulated at a pinned CPU factor must match the closed-form
// throughput.
func TestSimulationMatchesAnalyticTraining(t *testing.T) {
	for _, factor := range []float64{1.0, 0.5, 0.25} {
		cnn1, _ := workload.NewCNN1(accel.NewCloudTPU())
		want, err := TrainingThroughput(cnn1, factor)
		if err != nil {
			t.Fatal(err)
		}
		r := workload.Rates{CPUFactor: factor, LatencyStretch: 1, BWFraction: 1, LLCHit: 1, Backpressure: 1, SnoopStretch: 1}
		now, dt := 0.0, 100e-6
		cnn1.StartMeasurement(0)
		for now < 3.0 {
			cnn1.Advance(now, dt, 8, r)
			now += dt
		}
		got := cnn1.Throughput(now)
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("factor %v: simulated %v steps/s, analytic %v", factor, got, want)
		}
	}
}

func TestTrainingSlowdownFromPerf(t *testing.T) {
	// Round trip: stretch -> perf -> stretch.
	hs := 0.25
	for _, stretch := range []float64{1.0, 2.0, 5.0} {
		perf := 1 / ((1 - hs) + hs*stretch)
		got, err := TrainingSlowdownFromPerf(hs, perf)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-stretch) > 1e-9 {
			t.Errorf("round trip %v -> %v", stretch, got)
		}
	}
	if _, err := TrainingSlowdownFromPerf(0, 0.5); err == nil {
		t.Error("zero host share accepted")
	}
	if _, err := TrainingSlowdownFromPerf(0.5, 0); err == nil {
		t.Error("zero perf accepted")
	}
}

func TestInferenceCapacityMatchesSimulation(t *testing.T) {
	dev, _ := accel.NewDevice(accel.NewTPU())
	base, _ := workload.NewRNN1(dev, nil)
	cfg := base.Config()

	want, err := InferenceCapacity(cfg, dev.Platform, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Closed-loop simulation at 2 cores, full rate.
	r := workload.Rates{CPUFactor: 1, LatencyStretch: 1, BWFraction: 1, LLCHit: 1, Backpressure: 1, SnoopStretch: 1}
	now, dt := 0.0, 100e-6
	for now < 1.0 {
		base.Advance(now, dt, 2, r)
		now += dt
	}
	base.StartMeasurement(now)
	for now < 4.0 {
		base.Advance(now, dt, 2, r)
		now += dt
	}
	got := base.Throughput(now)
	if math.Abs(got-want)/want > 0.10 {
		t.Errorf("simulated %v QPS, analytic ceiling %v", got, want)
	}
	if _, err := InferenceCapacity(cfg, dev.Platform, 0, 1); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestBandwidthShareMatchesMemsys(t *testing.T) {
	cfg := node.DefaultConfig()
	n := node.MustNew(cfg)
	if _, err := n.Cgroups().Create("a", cgroup.Low); err != nil {
		t.Fatal(err)
	}
	n.Cgroups().SetCPUs("a", n.Processor().SocketCores(0).Take(14))
	agg, _ := workload.NewDRAMAggressor(workload.LevelHigh)
	n.AddTask(agg, "a")
	n.Run(10 * sim.Millisecond)
	res := n.Memory().Last()
	fr := res.Flows[0]
	want, err := BandwidthShare(fr.DRAMTraffic, 0, cfg.Memory.SocketBW())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fr.BWFraction-want) > 0.01 {
		t.Errorf("sim share %v, analytic %v", fr.BWFraction, want)
	}
}

func TestBandwidthShareProperties(t *testing.T) {
	f := func(d, b, c float64) bool {
		// Map arbitrary inputs into physical bandwidth magnitudes.
		norm := func(v float64) float64 {
			return math.Mod(math.Abs(v), 1e12)
		}
		d, b, c = norm(d), norm(b), norm(c)+1
		got, err := BandwidthShare(d, b, c)
		if err != nil {
			return false
		}
		return got > 0 && got <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if _, err := BandwidthShare(1, 1, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestMMnWait(t *testing.T) {
	w, err := MMnWait(0.01, 0.5)
	if err != nil || math.Abs(w-0.01) > 1e-12 {
		t.Errorf("MMnWait = %v, %v", w, err)
	}
	// Wait explodes toward saturation.
	w9, _ := MMnWait(0.01, 0.9)
	if !(w9 > w*5) {
		t.Errorf("wait at rho 0.9 = %v, want far above rho 0.5's %v", w9, w)
	}
	if _, err := MMnWait(0.01, 1.0); err == nil {
		t.Error("rho = 1 accepted")
	}
	if _, err := MMnWait(0, 0.5); err == nil {
		t.Error("zero service accepted")
	}
}

func TestLockstepRate(t *testing.T) {
	got, err := LockstepRate([]float64{30, 15, 28})
	if err != nil || got != 15 {
		t.Errorf("LockstepRate = %v, %v", got, err)
	}
	if _, err := LockstepRate(nil); err == nil {
		t.Error("empty workers accepted")
	}
	if _, err := LockstepRate([]float64{1, 0}); err == nil {
		t.Error("zero rate accepted")
	}
}
