// Package analytic provides closed-form performance models used to
// cross-validate the simulator: if the fluid simulation and the analytic
// model disagree on scenarios simple enough to solve by hand, the simulator
// has a bug. The test suites of node and experiments check simulation
// output against these predictions.
package analytic

import (
	"fmt"
	"math"

	"kelp/internal/accel"
	"kelp/internal/workload"
)

// TrainingStepTime predicts a training task's step duration when its CPU
// phases run at the given rate factor: accelerator and transfer phases are
// constant, CPU phases stretch by 1/cpuFactor (given enough cores for full
// parallelism).
func TrainingStepTime(t *workload.Training, cpuFactor float64) (float64, error) {
	if cpuFactor <= 0 {
		return 0, fmt.Errorf("analytic: cpuFactor = %v", cpuFactor)
	}
	standalone := t.StandaloneStepTime()
	host := standalone * t.HostShare()
	return (standalone - host) + host/cpuFactor, nil
}

// TrainingThroughput is the steps/s corresponding to TrainingStepTime.
func TrainingThroughput(t *workload.Training, cpuFactor float64) (float64, error) {
	st, err := TrainingStepTime(t, cpuFactor)
	if err != nil {
		return 0, err
	}
	if st <= 0 {
		return 0, fmt.Errorf("analytic: non-positive step time")
	}
	return 1 / st, nil
}

// TrainingSlowdownFromPerf inverts a workload-level normalized performance
// into the implied host-phase stretch: perf = 1 / (1 - hs + hs*stretch).
func TrainingSlowdownFromPerf(hostShare, perf float64) (stretch float64, err error) {
	if hostShare <= 0 || hostShare >= 1 {
		return 0, fmt.Errorf("analytic: hostShare = %v", hostShare)
	}
	if perf <= 0 || perf > 1.5 {
		return 0, fmt.Errorf("analytic: perf = %v", perf)
	}
	return (1/perf - (1 - hostShare)) / hostShare, nil
}

// InferenceCapacity predicts a pipelined inference server's throughput
// ceiling: the binding stage among the CPU stage (cores at the given rate
// factor), the accelerator FIFO, and the pipeline depth over the per-request
// service time.
func InferenceCapacity(cfg workload.InferenceConfig, platform accel.Platform, cores float64, cpuFactor float64) (float64, error) {
	if cores <= 0 || cpuFactor <= 0 {
		return 0, fmt.Errorf("analytic: cores = %v, cpuFactor = %v", cores, cpuFactor)
	}
	iters := float64(cfg.IterationsPerRequest)
	cpuPerReq := cfg.CPUWorkPerIter * iters / cpuFactor
	accelPerReq := platform.ComputeTime(cfg.AccelWorkPerIter) * iters
	xferPerReq := platform.TransferTime(cfg.XferBytes) * iters

	cpuCap := cores / cpuPerReq
	accelCap := 1 / accelPerReq
	service := cpuPerReq + accelPerReq + xferPerReq
	pipelineCap := float64(cfg.MaxConcurrency) / service

	return math.Min(cpuCap, math.Min(accelCap, pipelineCap)), nil
}

// MMnWait approximates the mean queueing delay of an M/M/1 server at
// utilization rho with the given mean service time — a sanity reference
// for the inference server's latency inflation near the knee.
func MMnWait(service, rho float64) (float64, error) {
	if service <= 0 {
		return 0, fmt.Errorf("analytic: service = %v", service)
	}
	if rho < 0 || rho >= 1 {
		return 0, fmt.Errorf("analytic: rho = %v", rho)
	}
	return service * rho / (1 - rho), nil
}

// BandwidthShare predicts the proportional-share grant fraction for a task
// demanding d against background traffic b on a controller of capacity c.
func BandwidthShare(d, b, c float64) (float64, error) {
	if d < 0 || b < 0 || c <= 0 {
		return 0, fmt.Errorf("analytic: d=%v b=%v c=%v", d, b, c)
	}
	total := d + b
	if total <= c {
		return 1, nil
	}
	return c / total, nil
}

// LockstepRate predicts a synchronous cluster's service rate: the slowest
// worker's rate, the deterministic limit of the tail-at-scale composition
// when workers are steady.
func LockstepRate(workerRates []float64) (float64, error) {
	if len(workerRates) == 0 {
		return 0, fmt.Errorf("analytic: no workers")
	}
	min := workerRates[0]
	for _, r := range workerRates {
		if r <= 0 {
			return 0, fmt.Errorf("analytic: non-positive worker rate %v", r)
		}
		if r < min {
			min = r
		}
	}
	return min, nil
}
