// Package metrics provides the measurement primitives the evaluation
// harness relies on: streaming latency histograms with percentile queries,
// throughput meters, windowed gauges, and summary statistics.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a log-bucketed streaming histogram for positive values
// (typically request latencies in seconds). Buckets grow geometrically, so
// relative error of percentile queries is bounded by the growth factor.
type Histogram struct {
	min     float64 // lower bound of bucket 0
	growth  float64 // bucket width ratio
	counts  []uint64
	n       uint64
	sum     float64
	maxSeen float64
	minSeen float64
}

// NewHistogram returns a histogram covering [min, max] with the given
// per-bucket growth factor (e.g. 1.05 for ~5% relative error). Values below
// min land in the first bucket; values above max land in the last.
func NewHistogram(min, max, growth float64) (*Histogram, error) {
	if !(min > 0) || !(max > min) {
		return nil, fmt.Errorf("metrics: invalid histogram range [%v, %v]", min, max)
	}
	if !(growth > 1) {
		return nil, fmt.Errorf("metrics: invalid growth factor %v", growth)
	}
	nb := int(math.Ceil(math.Log(max/min)/math.Log(growth))) + 1
	return &Histogram{
		min:     min,
		growth:  growth,
		counts:  make([]uint64, nb),
		minSeen: math.Inf(1),
	}, nil
}

// MustHistogram is NewHistogram that panics on invalid arguments.
func MustHistogram(min, max, growth float64) *Histogram {
	h, err := NewHistogram(min, max, growth)
	if err != nil {
		panic(err)
	}
	return h
}

// NewLatencyHistogram returns a histogram suitable for request latencies
// between 10 µs and 1000 s with ~2% relative error.
func NewLatencyHistogram() *Histogram {
	return MustHistogram(10e-6, 1000, 1.02)
}

func (h *Histogram) bucket(v float64) int {
	if v <= h.min {
		return 0
	}
	b := int(math.Log(v/h.min) / math.Log(h.growth))
	if b >= len(h.counts) {
		b = len(h.counts) - 1
	}
	return b
}

// Observe records one value. Non-positive and non-finite values are counted
// in the extreme buckets rather than dropped, so Count stays meaningful.
func (h *Histogram) Observe(v float64) {
	switch {
	case math.IsNaN(v):
		return
	case v <= 0:
		h.counts[0]++
	case math.IsInf(v, 1):
		h.counts[len(h.counts)-1]++
	default:
		h.counts[h.bucket(v)]++
		h.sum += v
		if v > h.maxSeen {
			h.maxSeen = v
		}
		if v < h.minSeen {
			h.minSeen = v
		}
	}
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the arithmetic mean of finite positive observations, or 0 if
// there are none.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Max returns the largest finite observation, or 0 if there are none.
func (h *Histogram) Max() float64 {
	if math.IsInf(h.minSeen, 1) {
		return 0
	}
	return h.maxSeen
}

// Quantile returns the value at quantile q in [0, 1] (q=0.95 is the 95th
// percentile). It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			// Upper edge of bucket i; clamp to the observed extremes so a
			// single-value histogram reports that value.
			v := h.min * math.Pow(h.growth, float64(i+1))
			if v > h.maxSeen && h.maxSeen > 0 {
				v = h.maxSeen
			}
			if v < h.minSeen {
				v = h.minSeen
			}
			return v
		}
	}
	return h.Max()
}

// Clone returns a deep copy of the histogram, used by simulation snapshots
// (the experiments layer's warm-started sweep cells).
func (h *Histogram) Clone() *Histogram {
	if h == nil {
		return nil
	}
	out := *h
	out.counts = append([]uint64(nil), h.counts...)
	return &out
}

// Reset clears all observations.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.n, h.sum, h.maxSeen = 0, 0, 0
	h.minSeen = math.Inf(1)
}

// Percentile returns the p-th percentile (p in [0,100]) of values, using
// linear interpolation on a sorted copy. It is exact (unlike Histogram) and
// intended for small result sets such as per-run summary values.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
