package metrics

import (
	"bytes"
	"encoding/gob"
)

// Gob wire mirrors. Meter and Histogram keep their fields unexported so the
// measurement API stays narrow; the durability layer still needs to move them
// across a process restart byte-exactly, so each type implements
// gob.GobEncoder/GobDecoder through an exported mirror struct. gob encodes
// float64 values by bit pattern, so round-tripping preserves results exactly.

type meterWire struct {
	Total     float64
	TotalAll  float64
	StartTime float64
	Started   bool
	LastTime  float64
}

// GobEncode implements gob.GobEncoder.
func (m Meter) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(meterWire{
		Total: m.total, TotalAll: m.totalAll, StartTime: m.startTime,
		Started: m.started, LastTime: m.lastTime,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (m *Meter) GobDecode(data []byte) error {
	var w meterWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	m.total, m.totalAll, m.startTime = w.Total, w.TotalAll, w.StartTime
	m.started, m.lastTime = w.Started, w.LastTime
	return nil
}

type histogramWire struct {
	Min     float64
	Growth  float64
	Counts  []uint64
	N       uint64
	Sum     float64
	MaxSeen float64
	MinSeen float64
}

// GobEncode implements gob.GobEncoder.
func (h *Histogram) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(histogramWire{
		Min: h.min, Growth: h.growth, Counts: h.counts,
		N: h.n, Sum: h.sum, MaxSeen: h.maxSeen, MinSeen: h.minSeen,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (h *Histogram) GobDecode(data []byte) error {
	var w histogramWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	h.min, h.growth, h.counts = w.Min, w.Growth, w.Counts
	h.n, h.sum, h.maxSeen, h.minSeen = w.N, w.Sum, w.MaxSeen, w.MinSeen
	return nil
}
