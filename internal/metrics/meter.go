package metrics

import "math"

// Meter accumulates completed work over simulated time and reports average
// throughput. It supports marking a measurement start so that warmup work is
// excluded from the reported rate.
type Meter struct {
	total     float64
	totalAll  float64
	startTime float64
	started   bool
	lastTime  float64
}

// Add records amount units of completed work at simulated time now.
func (m *Meter) Add(now, amount float64) {
	m.totalAll += amount
	if m.started {
		m.total += amount
	}
	m.lastTime = now
}

// StartMeasurement discards everything recorded so far and begins the
// measured interval at time now.
func (m *Meter) StartMeasurement(now float64) {
	m.started = true
	m.startTime = now
	m.total = 0
}

// Total returns the work completed during the measured interval (or since
// creation if StartMeasurement was never called).
func (m *Meter) Total() float64 {
	if m.started {
		return m.total
	}
	return m.totalAll
}

// Rate returns throughput in units per second as of time now.
func (m *Meter) Rate(now float64) float64 {
	start := 0.0
	if m.started {
		start = m.startTime
	}
	dt := now - start
	if dt <= 0 {
		return 0
	}
	return m.Total() / dt
}

// Gauge tracks the exponentially-weighted moving average of a sampled value,
// the standard smoothing used by feedback controllers reading noisy counters.
type Gauge struct {
	alpha float64
	value float64
	init  bool
	last  float64
}

// NewGauge returns a gauge with smoothing factor alpha in (0, 1]; alpha = 1
// means no smoothing.
func NewGauge(alpha float64) *Gauge {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		alpha = 1
	}
	return &Gauge{alpha: alpha}
}

// Set records a new sample.
func (g *Gauge) Set(v float64) {
	g.last = v
	if !g.init {
		g.value, g.init = v, true
		return
	}
	g.value = g.alpha*v + (1-g.alpha)*g.value
}

// Value returns the smoothed value.
func (g *Gauge) Value() float64 { return g.value }

// Last returns the most recent raw sample.
func (g *Gauge) Last() float64 { return g.last }

// TimeSeries records (time, value) samples for trace output.
type TimeSeries struct {
	Times  []float64
	Values []float64
}

// Append records one sample.
func (ts *TimeSeries) Append(t, v float64) {
	ts.Times = append(ts.Times, t)
	ts.Values = append(ts.Values, v)
}

// Len returns the number of samples.
func (ts *TimeSeries) Len() int { return len(ts.Times) }

// MeanValue returns the arithmetic mean of all sampled values, or 0 when
// empty.
func (ts *TimeSeries) MeanValue() float64 {
	if len(ts.Values) == 0 {
		return 0
	}
	return Mean(ts.Values)
}
