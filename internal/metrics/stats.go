package metrics

import "math"

// Mean returns the arithmetic mean of xs, or 0 when empty. The paper uses
// the arithmetic mean to average ML-task slowdowns (Fig. 13).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// HarmonicMean returns the harmonic mean of xs, or 0 when empty or when any
// element is non-positive. The paper uses the harmonic mean to average CPU
// task throughputs (Fig. 13), which is the standard choice for rates.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) {
			return 0
		}
		s += 1 / x
	}
	return float64(len(xs)) / s
}

// GeoMean returns the geometric mean of xs, or 0 when empty or when any
// element is non-positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Median returns the median of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// TrailingMedian returns the median of the last window entries of xs (all
// of xs when it is shorter, or when window <= 0). The cluster runtime's
// barrier timeout derives its straggler threshold from this: a trailing
// window tracks drift in the service's own step time, so the threshold
// adapts instead of being an absolute constant.
func TrailingMedian(xs []float64, window int) float64 {
	if window > 0 && len(xs) > window {
		xs = xs[len(xs)-window:]
	}
	return Median(xs)
}
