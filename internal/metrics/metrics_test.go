package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	cases := []struct{ min, max, growth float64 }{
		{0, 1, 1.1}, {-1, 1, 1.1}, {1, 1, 1.1}, {2, 1, 1.1}, {1e-3, 1, 1.0}, {1e-3, 1, 0.5},
	}
	for _, c := range cases {
		if _, err := NewHistogram(c.min, c.max, c.growth); err == nil {
			t.Errorf("NewHistogram(%v, %v, %v) accepted invalid args", c.min, c.max, c.growth)
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := MustHistogram(1e-4, 100, 1.01)
	rng := rand.New(rand.NewSource(7))
	var vals []float64
	for i := 0; i < 20000; i++ {
		// Log-normal-ish latencies around 5 ms.
		v := 5e-3 * math.Exp(rng.NormFloat64()*0.5)
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := vals[int(q*float64(len(vals)))-1]
		got := h.Quantile(q)
		if math.Abs(got-exact)/exact > 0.05 {
			t.Errorf("Quantile(%v) = %v, exact %v (>5%% error)", q, got, exact)
		}
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		h := NewLatencyHistogram()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			h.Observe(1e-4 * math.Exp(rng.Float64()*8))
		}
		prev := 0.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Error("NaN should be ignored")
	}
	h.Observe(-1)
	h.Observe(0)
	h.Observe(math.Inf(1))
	if h.Count() != 3 {
		t.Errorf("Count = %d, want 3", h.Count())
	}
	h.Observe(1e-9) // below range: first bucket
	h.Observe(1e9)  // above range: last bucket
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(0.010)
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		got := h.Quantile(q)
		if math.Abs(got-0.010)/0.010 > 0.03 {
			t.Errorf("Quantile(%v) = %v, want ~0.010", q, got)
		}
	}
	if h.Mean() != 0.010 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Max() != 0.010 {
		t.Errorf("Max = %v", h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Quantile(0.95) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(0.01)
	h.Observe(0.02)
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("Reset did not clear histogram")
	}
}

func TestPercentileExact(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-5, 1}, {200, 5},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	vals := []float64{3, 1, 2}
	Percentile(vals, 50)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestMeterRate(t *testing.T) {
	var m Meter
	m.Add(1.0, 10)
	m.Add(2.0, 10)
	if got := m.Rate(2.0); got != 10 {
		t.Errorf("Rate = %v, want 10", got)
	}
}

func TestMeterStartMeasurementExcludesWarmup(t *testing.T) {
	var m Meter
	m.Add(0.5, 100) // warmup
	m.StartMeasurement(1.0)
	m.Add(1.5, 10)
	m.Add(2.0, 10)
	if got := m.Total(); got != 20 {
		t.Errorf("Total = %v, want 20", got)
	}
	if got := m.Rate(3.0); got != 10 {
		t.Errorf("Rate = %v, want 10", got)
	}
}

func TestMeterZeroWindow(t *testing.T) {
	var m Meter
	m.StartMeasurement(1.0)
	if got := m.Rate(1.0); got != 0 {
		t.Errorf("Rate over zero window = %v, want 0", got)
	}
}

func TestGaugeSmoothing(t *testing.T) {
	g := NewGauge(0.5)
	g.Set(10)
	if g.Value() != 10 {
		t.Errorf("first sample should initialize: %v", g.Value())
	}
	g.Set(20)
	if g.Value() != 15 {
		t.Errorf("Value = %v, want 15", g.Value())
	}
	if g.Last() != 20 {
		t.Errorf("Last = %v, want 20", g.Last())
	}
}

func TestGaugeBadAlphaFallsBackToRaw(t *testing.T) {
	g := NewGauge(0)
	g.Set(1)
	g.Set(9)
	if g.Value() != 9 {
		t.Errorf("Value = %v, want 9 (alpha=1 fallback)", g.Value())
	}
}

func TestTimeSeries(t *testing.T) {
	var ts TimeSeries
	ts.Append(0, 1)
	ts.Append(1, 3)
	if ts.Len() != 2 {
		t.Fatalf("Len = %d", ts.Len())
	}
	if got := ts.MeanValue(); got != 2 {
		t.Errorf("MeanValue = %v, want 2", got)
	}
	var empty TimeSeries
	if empty.MeanValue() != 0 {
		t.Error("empty MeanValue should be 0")
	}
}

func TestMeanAndMedian(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("Median = %v", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 1, 1}); got != 1 {
		t.Errorf("HarmonicMean(1,1,1) = %v", got)
	}
	got := HarmonicMean([]float64{2, 4})
	want := 2 / (0.5 + 0.25)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("HarmonicMean(2,4) = %v, want %v", got, want)
	}
	if HarmonicMean([]float64{1, 0}) != 0 {
		t.Error("HarmonicMean with zero should be 0")
	}
	if HarmonicMean(nil) != 0 {
		t.Error("HarmonicMean(nil) != 0")
	}
}

func TestHarmonicLEGeoLEArith(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 5)
		for i := range xs {
			xs[i] = 0.1 + rng.Float64()*10
		}
		h, g, a := HarmonicMean(xs), GeoMean(xs), Mean(xs)
		return h <= g+1e-9 && g <= a+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{5}) != 0 {
		t.Error("Stddev of one value should be 0")
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("Stddev = %v, want 2", got)
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("GeoMean with negative should be 0")
	}
}
