// Package cpu models the host processor's cores: their socket and NUMA
// subdomain topology, per-core L2 hardware prefetcher toggles (the MSR knob
// Kelp flips), and core sets (the CPU-mask actuator CoreThrottle and Kelp's
// backfilling use).
//
// Prefetchers trade single-thread performance for memory traffic: a core
// with prefetching enabled multiplies its offered DRAM bandwidth by
// (1 + PrefetchTraffic) and its memory-bound execution rate by
// PrefetchSpeedup. Disabling prefetchers is therefore a pure
// pressure-management knob, exactly as in the paper (§IV-B).
package cpu

import (
	"fmt"
	"sort"
)

// Topology describes the core layout of one node.
type Topology struct {
	Sockets        int
	CoresPerSocket int
	// SubdomainsPerSocket is how many NUMA subdomains each socket splits
	// into when SNC is enabled; cores are divided evenly among them.
	SubdomainsPerSocket int
	// SMTWays is threads per physical core (2 on the paper's Xeons). The
	// simulator schedules at logical-core granularity; SMTWays informs
	// capacity accounting.
	SMTWays int
}

// DefaultTopology mirrors the paper's dual-socket hosts: 2 sockets x 28
// logical cores, two subdomains per socket, SMT2.
func DefaultTopology() Topology {
	return Topology{Sockets: 2, CoresPerSocket: 28, SubdomainsPerSocket: 2, SMTWays: 2}
}

// Validate reports whether the topology is usable.
func (t Topology) Validate() error {
	switch {
	case t.Sockets < 1:
		return fmt.Errorf("cpu: Sockets = %d", t.Sockets)
	case t.CoresPerSocket < 1:
		return fmt.Errorf("cpu: CoresPerSocket = %d", t.CoresPerSocket)
	case t.SubdomainsPerSocket < 1 || t.CoresPerSocket%t.SubdomainsPerSocket != 0:
		return fmt.Errorf("cpu: %d cores not divisible into %d subdomains",
			t.CoresPerSocket, t.SubdomainsPerSocket)
	case t.SMTWays < 1:
		return fmt.Errorf("cpu: SMTWays = %d", t.SMTWays)
	}
	return nil
}

// TotalCores returns the number of logical cores on the node.
func (t Topology) TotalCores() int { return t.Sockets * t.CoresPerSocket }

// CoresPerSubdomain returns logical cores per NUMA subdomain.
func (t Topology) CoresPerSubdomain() int { return t.CoresPerSocket / t.SubdomainsPerSocket }

// Core is one logical core.
type Core struct {
	ID        int
	Socket    int
	Subdomain int
	// PrefetchOn reports whether the core's L2 hardware prefetchers are
	// enabled. Default on, as on real machines.
	PrefetchOn bool
}

// Processor is the set of all cores on a node plus the prefetcher state.
type Processor struct {
	topo  Topology
	cores []Core
	// gen counts prefetcher-state mutations; the node's clean-tick fast
	// path compares generations to detect actuations between steps.
	gen uint64
}

// NewProcessor builds a processor for the topology. Core IDs are dense:
// socket-major, subdomain-minor, matching how SNC exposes NUMA nodes.
func NewProcessor(topo Topology) (*Processor, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	p := &Processor{topo: topo}
	id := 0
	perSub := topo.CoresPerSubdomain()
	for s := 0; s < topo.Sockets; s++ {
		for sd := 0; sd < topo.SubdomainsPerSocket; sd++ {
			for c := 0; c < perSub; c++ {
				p.cores = append(p.cores, Core{ID: id, Socket: s, Subdomain: sd, PrefetchOn: true})
				id++
			}
		}
	}
	return p, nil
}

// MustProcessor is NewProcessor that panics on invalid topology.
func MustProcessor(topo Topology) *Processor {
	p, err := NewProcessor(topo)
	if err != nil {
		panic(err)
	}
	return p
}

// Topology returns the processor's topology.
func (p *Processor) Topology() Topology { return p.topo }

// Core returns the core with the given ID.
func (p *Processor) Core(id int) (Core, error) {
	if id < 0 || id >= len(p.cores) {
		return Core{}, fmt.Errorf("cpu: core %d out of range [0, %d)", id, len(p.cores))
	}
	return p.cores[id], nil
}

// NumCores returns the number of logical cores.
func (p *Processor) NumCores() int { return len(p.cores) }

// SetPrefetch toggles the L2 prefetchers on one core.
func (p *Processor) SetPrefetch(id int, on bool) error {
	if id < 0 || id >= len(p.cores) {
		return fmt.Errorf("cpu: core %d out of range", id)
	}
	if p.cores[id].PrefetchOn != on {
		p.cores[id].PrefetchOn = on
		p.gen++
	}
	return nil
}

// Gen returns the prefetcher-state generation, incremented by every
// effective SetPrefetch (a write that changes a core's flag). Equal
// generations guarantee identical prefetcher state.
func (p *Processor) Gen() uint64 { return p.gen }

// PrefetchState returns a copy of every core's prefetcher flag, indexed by
// core ID — the processor's snapshotable mutable state.
func (p *Processor) PrefetchState() []bool {
	st := make([]bool, len(p.cores))
	for i, c := range p.cores {
		st[i] = c.PrefetchOn
	}
	return st
}

// RestorePrefetchState installs a snapshot taken by PrefetchState.
func (p *Processor) RestorePrefetchState(st []bool) error {
	if len(st) != len(p.cores) {
		return fmt.Errorf("cpu: snapshot has %d cores, processor has %d", len(st), len(p.cores))
	}
	for i := range p.cores {
		if p.cores[i].PrefetchOn != st[i] {
			p.cores[i].PrefetchOn = st[i]
			p.gen++
		}
	}
	return nil
}

// PrefetchOn reports the prefetcher state of one core; out-of-range IDs
// report false.
func (p *Processor) PrefetchOn(id int) bool {
	if id < 0 || id >= len(p.cores) {
		return false
	}
	return p.cores[id].PrefetchOn
}

// CoreSet returns the IDs of all cores matching the filter.
func (p *Processor) CoreSet(filter func(Core) bool) Set {
	var s Set
	for _, c := range p.cores {
		if filter == nil || filter(c) {
			s = append(s, c.ID)
		}
	}
	return s
}

// SocketCores returns all core IDs on a socket.
func (p *Processor) SocketCores(socket int) Set {
	return p.CoreSet(func(c Core) bool { return c.Socket == socket })
}

// SubdomainCores returns all core IDs in (socket, subdomain).
func (p *Processor) SubdomainCores(socket, subdomain int) Set {
	return p.CoreSet(func(c Core) bool { return c.Socket == socket && c.Subdomain == subdomain })
}

// Set is an ordered set of logical core IDs — a CPU mask.
type Set []int

// NewSet returns a normalized (sorted, deduplicated) set.
func NewSet(ids ...int) Set {
	s := append(Set(nil), ids...)
	sort.Ints(s)
	out := s[:0]
	for i, id := range s {
		if i == 0 || id != s[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// Len returns the number of cores in the set.
func (s Set) Len() int { return len(s) }

// Contains reports whether id is in the set.
func (s Set) Contains(id int) bool {
	i := sort.SearchInts(s, id)
	return i < len(s) && s[i] == id
}

// Take returns the first n cores of the set (all of them if n >= Len).
func (s Set) Take(n int) Set {
	if n < 0 {
		n = 0
	}
	if n > len(s) {
		n = len(s)
	}
	return append(Set(nil), s[:n]...)
}

// Union returns the sorted union of s and other.
func (s Set) Union(other Set) Set {
	return NewSet(append(append([]int(nil), s...), other...)...)
}

// Minus returns s with other's cores removed.
func (s Set) Minus(other Set) Set {
	var out Set
	for _, id := range s {
		if !other.Contains(id) {
			out = append(out, id)
		}
	}
	return out
}

// Intersect returns the cores present in both sets.
func (s Set) Intersect(other Set) Set {
	var out Set
	for _, id := range s {
		if other.Contains(id) {
			out = append(out, id)
		}
	}
	return out
}
