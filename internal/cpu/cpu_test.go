package cpu

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTopologyValidate(t *testing.T) {
	if err := DefaultTopology().Validate(); err != nil {
		t.Fatalf("default topology invalid: %v", err)
	}
	bad := []Topology{
		{Sockets: 0, CoresPerSocket: 4, SubdomainsPerSocket: 2, SMTWays: 1},
		{Sockets: 1, CoresPerSocket: 0, SubdomainsPerSocket: 1, SMTWays: 1},
		{Sockets: 1, CoresPerSocket: 5, SubdomainsPerSocket: 2, SMTWays: 1},
		{Sockets: 1, CoresPerSocket: 4, SubdomainsPerSocket: 0, SMTWays: 1},
		{Sockets: 1, CoresPerSocket: 4, SubdomainsPerSocket: 2, SMTWays: 0},
	}
	for i, topo := range bad {
		if err := topo.Validate(); err == nil {
			t.Errorf("case %d: invalid topology accepted: %+v", i, topo)
		}
	}
}

func TestProcessorLayout(t *testing.T) {
	topo := DefaultTopology()
	p := MustProcessor(topo)
	if p.NumCores() != topo.TotalCores() {
		t.Fatalf("NumCores = %d, want %d", p.NumCores(), topo.TotalCores())
	}
	// Dense, socket-major, subdomain-minor IDs.
	perSub := topo.CoresPerSubdomain()
	for id := 0; id < p.NumCores(); id++ {
		c, err := p.Core(id)
		if err != nil {
			t.Fatal(err)
		}
		wantSocket := id / topo.CoresPerSocket
		wantSub := (id % topo.CoresPerSocket) / perSub
		if c.Socket != wantSocket || c.Subdomain != wantSub {
			t.Errorf("core %d at (socket %d, sub %d), want (%d, %d)",
				id, c.Socket, c.Subdomain, wantSocket, wantSub)
		}
		if !c.PrefetchOn {
			t.Errorf("core %d prefetch off by default", id)
		}
	}
	if _, err := p.Core(-1); err == nil {
		t.Error("Core(-1) accepted")
	}
	if _, err := p.Core(p.NumCores()); err == nil {
		t.Error("Core(out-of-range) accepted")
	}
}

func TestSubdomainCores(t *testing.T) {
	topo := DefaultTopology()
	p := MustProcessor(topo)
	s := p.SubdomainCores(1, 1)
	if s.Len() != topo.CoresPerSubdomain() {
		t.Fatalf("SubdomainCores len = %d, want %d", s.Len(), topo.CoresPerSubdomain())
	}
	for _, id := range s {
		c, _ := p.Core(id)
		if c.Socket != 1 || c.Subdomain != 1 {
			t.Errorf("core %d in wrong place: %+v", id, c)
		}
	}
	if got := p.SocketCores(0).Len(); got != topo.CoresPerSocket {
		t.Errorf("SocketCores(0) len = %d", got)
	}
}

func TestPrefetchToggle(t *testing.T) {
	p := MustProcessor(DefaultTopology())
	if err := p.SetPrefetch(3, false); err != nil {
		t.Fatal(err)
	}
	if p.PrefetchOn(3) {
		t.Error("prefetch still on after disable")
	}
	if err := p.SetPrefetch(3, true); err != nil {
		t.Fatal(err)
	}
	if !p.PrefetchOn(3) {
		t.Error("prefetch still off after enable")
	}
	if err := p.SetPrefetch(-1, false); err == nil {
		t.Error("SetPrefetch(-1) accepted")
	}
	if p.PrefetchOn(-1) {
		t.Error("PrefetchOn(-1) should be false")
	}
}

func TestSetNormalization(t *testing.T) {
	s := NewSet(3, 1, 2, 3, 1)
	want := []int{1, 2, 3}
	if s.Len() != 3 {
		t.Fatalf("Set = %v", s)
	}
	for i, id := range want {
		if s[i] != id {
			t.Fatalf("Set = %v, want %v", s, want)
		}
	}
}

func TestSetOperations(t *testing.T) {
	a := NewSet(1, 2, 3, 4)
	b := NewSet(3, 4, 5)
	if got := a.Union(b); got.Len() != 5 || !got.Contains(5) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Minus(b); got.Len() != 2 || got.Contains(3) {
		t.Errorf("Minus = %v", got)
	}
	if got := a.Intersect(b); got.Len() != 2 || !got.Contains(3) || !got.Contains(4) {
		t.Errorf("Intersect = %v", got)
	}
	if a.Contains(9) {
		t.Error("Contains(9) true")
	}
}

func TestSetTake(t *testing.T) {
	s := NewSet(5, 6, 7)
	if got := s.Take(2); got.Len() != 2 || got[0] != 5 {
		t.Errorf("Take(2) = %v", got)
	}
	if got := s.Take(10); got.Len() != 3 {
		t.Errorf("Take(10) = %v", got)
	}
	if got := s.Take(-1); got.Len() != 0 {
		t.Errorf("Take(-1) = %v", got)
	}
	// Take must copy, not alias.
	taken := s.Take(3)
	taken[0] = 99
	if s[0] == 99 {
		t.Error("Take aliases the original set")
	}
}

func TestSetAlgebraProperties(t *testing.T) {
	gen := func(rng *rand.Rand) Set {
		n := rng.Intn(10)
		ids := make([]int, n)
		for i := range ids {
			ids[i] = rng.Intn(16)
		}
		return NewSet(ids...)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := gen(rng), gen(rng)
		u := a.Union(b)
		for _, id := range a {
			if !u.Contains(id) {
				return false
			}
		}
		for _, id := range b {
			if !u.Contains(id) {
				return false
			}
		}
		// (a - b) and (a ∩ b) partition a.
		if a.Minus(b).Len()+a.Intersect(b).Len() != a.Len() {
			return false
		}
		// Minus removes all of b.
		for _, id := range a.Minus(b) {
			if b.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCoreSetFilterNil(t *testing.T) {
	p := MustProcessor(DefaultTopology())
	if got := p.CoreSet(nil).Len(); got != p.NumCores() {
		t.Errorf("CoreSet(nil) = %d cores, want all %d", got, p.NumCores())
	}
}
