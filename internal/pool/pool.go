// Package pool is the bounded worker pool behind every embarrassingly
// parallel sweep in the tree: the evaluation grids of internal/experiments
// and the per-worker simulations of internal/cluster. Work is expressed as
// n independent cells; Collect fans them out across a bounded set of
// goroutines and gathers results by input index, so the output is
// byte-identical to a serial sweep — ordering, the only thing concurrency
// could perturb, is restored at collection time.
package pool

import (
	"runtime"
	"sync"
)

// DefaultParallelism is the worker count used when a caller does not
// request an explicit one: the Go runtime's available parallelism.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// Collect evaluates cell(0) .. cell(n-1) on a bounded pool of workers and
// returns the results in input order. workers <= 0 selects
// DefaultParallelism; workers == 1 runs serially with fail-fast semantics.
// Cells must be independent of each other. If any cell fails, Collect
// returns the lowest-indexed error — the same one a serial in-order sweep
// would have reported first.
func Collect[T any](workers, n int, cell func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = DefaultParallelism()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		out := make([]T, 0, n)
		for i := 0; i < n; i++ {
			r, err := cell(i)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
		return out, nil
	}

	out := make([]T, n)
	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				// Each index is written by exactly one goroutine, so the
				// slices need no locking.
				out[i], errs[i] = cell(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
