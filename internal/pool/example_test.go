package pool_test

import (
	"fmt"

	"kelp/internal/pool"
)

// ExampleCollect fans a batch of independent cells out over a bounded
// worker pool. Results come back in input order regardless of the worker
// count, which is what keeps every sweep in this repository byte-identical
// at any -parallel setting.
func ExampleCollect() {
	squares, err := pool.Collect(4, 6, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(squares)
	// Output:
	// [0 1 4 9 16 25]
}
