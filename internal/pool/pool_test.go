package pool

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestCollectPreservesInputOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		got, err := Collect(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestCollectEmpty(t *testing.T) {
	got, err := Collect(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Errorf("empty sweep: %v, %v", got, err)
	}
}

func TestCollectReturnsLowestIndexedError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Collect(workers, 20, func(i int) (int, error) {
			if i == 3 || i == 17 {
				return 0, fmt.Errorf("cell %d", i)
			}
			return i, nil
		})
		// The same error a serial in-order sweep reports first.
		if err == nil || err.Error() != "cell 3" {
			t.Errorf("workers=%d: err = %v, want cell 3", workers, err)
		}
	}
}

func TestCollectBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	_, err := Collect(3, 64, func(i int) (int, error) {
		n := cur.Add(1)
		defer cur.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("observed %d concurrent cells, bound is 3", p)
	}
}
