package perfmon

import (
	"math"
	"reflect"
	"testing"

	"kelp/internal/memsys"
)

func TestNewMonitorValidates(t *testing.T) {
	if _, err := NewMonitor(0, 2); err == nil {
		t.Error("0 sockets accepted")
	}
	if _, err := NewMonitor(2, 0); err == nil {
		t.Error("0 controllers accepted")
	}
	if _, err := NewMonitor(2, 2); err != nil {
		t.Error(err)
	}
}

func resolve(t *testing.T, sys *memsys.System, flows []memsys.Flow) *memsys.Resolution {
	t.Helper()
	res, err := sys.Resolve(flows)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWindowAverages(t *testing.T) {
	cfg := memsys.DefaultConfig()
	sys := memsys.MustSystem(cfg)
	m := MustMonitor(cfg.Sockets, cfg.ControllersPerSocket)

	r1 := resolve(t, sys, []memsys.Flow{{Task: "a", Socket: 0, DemandBW: 10 * memsys.GB}})
	r2 := resolve(t, sys, []memsys.Flow{{Task: "a", Socket: 0, DemandBW: 30 * memsys.GB}})
	m.Record(1.0, r1)
	m.Record(1.0, r2)

	s := m.Window()
	if math.Abs(s.Elapsed-2.0) > 1e-12 {
		t.Fatalf("Elapsed = %v", s.Elapsed)
	}
	want := 20 * float64(memsys.GB)
	if math.Abs(s.SocketBW[0]-want)/want > 0.01 {
		t.Errorf("SocketBW = %v, want ~%v", s.SocketBW[0], want)
	}
	if s.SocketBW[1] != 0 {
		t.Errorf("socket 1 BW = %v, want 0", s.SocketBW[1])
	}
	if s.SocketLatency[0] <= 0 {
		t.Error("latency should be positive")
	}
	if s.SocketBackpressure[0] <= 0 || s.SocketBackpressure[0] > 1 {
		t.Errorf("backpressure = %v", s.SocketBackpressure[0])
	}
}

func TestWindowResets(t *testing.T) {
	cfg := memsys.DefaultConfig()
	sys := memsys.MustSystem(cfg)
	m := MustMonitor(cfg.Sockets, cfg.ControllersPerSocket)
	m.Record(1.0, resolve(t, sys, []memsys.Flow{{Task: "a", Socket: 0, DemandBW: memsys.GB}}))
	_ = m.Window()
	s := m.Window()
	if s.Elapsed != 0 || s.SocketBW[0] != 0 {
		t.Errorf("second window not reset: %+v", s)
	}
}

// TestPeekDoesNotResetWindow pins the observer contract the concurrent
// metrics scrapers rely on: Peek is repeatable, and a controller's
// subsequent Window sees the same accumulated interval as if Peek had
// never happened.
func TestPeekDoesNotResetWindow(t *testing.T) {
	cfg := memsys.DefaultConfig()
	sys := memsys.MustSystem(cfg)
	m := MustMonitor(cfg.Sockets, cfg.ControllersPerSocket)
	m.Record(1.0, resolve(t, sys, []memsys.Flow{{Task: "a", Socket: 0, DemandBW: 10 * memsys.GB}}))
	m.Record(1.0, resolve(t, sys, []memsys.Flow{{Task: "a", Socket: 0, DemandBW: 30 * memsys.GB}}))

	p1 := m.Peek()
	p2 := m.Peek()
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("consecutive Peeks differ:\n%+v\n%+v", p1, p2)
	}
	w := m.Window()
	if !reflect.DeepEqual(p1, w) {
		t.Errorf("Window after Peek differs from Peek:\n%+v\n%+v", p1, w)
	}
	if s := m.Window(); s.Elapsed != 0 {
		t.Errorf("Window after Window not reset: Elapsed = %v", s.Elapsed)
	}
}

// TestZeroElapsedWindowAllZero pins the other scraper-facing invariant: a
// window with nothing recorded returns fully-shaped, all-zero samples —
// including the per-controller arrays — rather than partial or NaN values.
func TestZeroElapsedWindowAllZero(t *testing.T) {
	const sockets, cps = 2, 2
	m := MustMonitor(sockets, cps)
	for name, s := range map[string]Sample{"Peek": m.Peek(), "Window": m.Window()} {
		if s.Elapsed != 0 {
			t.Errorf("%s: Elapsed = %v", name, s.Elapsed)
		}
		if len(s.SocketBW) != sockets || len(s.ControllerBW) != sockets {
			t.Fatalf("%s: bad shape %+v", name, s)
		}
		for sock := 0; sock < sockets; sock++ {
			if s.SocketBW[sock] != 0 || s.SocketOfferedBW[sock] != 0 ||
				s.SocketLatency[sock] != 0 || s.SocketSaturation[sock] != 0 ||
				s.SocketBackpressure[sock] != 0 {
				t.Errorf("%s: socket %d not all-zero: %+v", name, sock, s)
			}
			if len(s.ControllerBW[sock]) != cps || len(s.ControllerLatency[sock]) != cps {
				t.Fatalf("%s: controller shape %+v", name, s)
			}
			for c := 0; c < cps; c++ {
				if s.ControllerBW[sock][c] != 0 || s.ControllerLatency[sock][c] != 0 {
					t.Errorf("%s: controller %d/%d non-zero", name, sock, c)
				}
			}
		}
	}
}

func TestSaturationVisibleInWindow(t *testing.T) {
	cfg := memsys.DefaultConfig()
	sys := memsys.MustSystem(cfg)
	m := MustMonitor(cfg.Sockets, cfg.ControllersPerSocket)
	m.Record(1.0, resolve(t, sys, []memsys.Flow{
		{Task: "agg", Socket: 0, DemandBW: 1.5 * cfg.SocketBW()},
	}))
	s := m.Window()
	if s.SocketSaturation[0] <= 0.5 {
		t.Errorf("saturation = %v, want high under 150%% load", s.SocketSaturation[0])
	}
	if s.SocketBackpressure[0] >= 1 {
		t.Errorf("backpressure = %v, want < 1", s.SocketBackpressure[0])
	}
}

func TestSubdomainBW(t *testing.T) {
	cfg := memsys.DefaultConfig()
	cfg.SNCEnabled = true
	sys := memsys.MustSystem(cfg)
	m := MustMonitor(cfg.Sockets, cfg.ControllersPerSocket)
	m.Record(1.0, resolve(t, sys, []memsys.Flow{
		{Task: "hi", Socket: 0, Subdomain: 0, DemandBW: 5 * memsys.GB},
		{Task: "lo", Socket: 0, Subdomain: 1, DemandBW: 15 * memsys.GB},
	}))
	s := m.Window()
	bw0 := s.SubdomainBW(0, 0)
	bw1 := s.SubdomainBW(0, 1)
	if math.Abs(bw0-5*memsys.GB)/(5*memsys.GB) > 0.01 {
		t.Errorf("subdomain 0 BW = %v", bw0)
	}
	if math.Abs(bw1-15*memsys.GB)/(15*memsys.GB) > 0.01 {
		t.Errorf("subdomain 1 BW = %v", bw1)
	}
	if s.SubdomainBW(9, 0) != 0 || s.SubdomainBW(0, 9) != 0 {
		t.Error("out-of-range subdomain should report 0")
	}
}

func TestTotalBytesCumulative(t *testing.T) {
	cfg := memsys.DefaultConfig()
	sys := memsys.MustSystem(cfg)
	m := MustMonitor(cfg.Sockets, cfg.ControllersPerSocket)
	res := resolve(t, sys, []memsys.Flow{{Task: "a", Socket: 0, DemandBW: memsys.GB}})
	m.Record(1.0, res)
	_ = m.Window() // reset windowed state
	m.Record(1.0, res)
	got := m.TotalBytes(0)
	want := 2 * float64(memsys.GB)
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("TotalBytes = %v, want %v (cumulative across windows)", got, want)
	}
	if m.TotalBytes(-1) != 0 || m.TotalBytes(9) != 0 {
		t.Error("out-of-range socket should report 0")
	}
}

func TestRecordIgnoresNilAndZeroDt(t *testing.T) {
	m := MustMonitor(2, 2)
	m.Record(1.0, nil)
	cfg := memsys.DefaultConfig()
	sys := memsys.MustSystem(cfg)
	res, _ := sys.Resolve([]memsys.Flow{{Task: "a", Socket: 0, DemandBW: memsys.GB}})
	m.Record(0, res)
	m.Record(-1, res)
	if s := m.Window(); s.Elapsed != 0 {
		t.Errorf("Elapsed = %v, want 0", s.Elapsed)
	}
}

func TestEmptyWindowIsZero(t *testing.T) {
	m := MustMonitor(1, 1)
	s := m.Window()
	if s.Elapsed != 0 || s.SocketBW[0] != 0 || s.SocketLatency[0] != 0 {
		t.Errorf("empty window = %+v", s)
	}
}
