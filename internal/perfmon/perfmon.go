// Package perfmon models the performance-monitoring infrastructure Kelp
// samples: socket-level memory bandwidth, loaded memory latency, memory
// saturation (the duty cycle of the uncore distress signal, the paper's
// FAST_ASSERTED event), and per-controller (per-subdomain) bandwidth.
//
// A Monitor integrates per-step memory-system resolutions; controllers call
// Window to obtain averages since their previous read, mirroring how a
// runtime reads PMU deltas between samples.
package perfmon

import (
	"fmt"
	"math"

	"kelp/internal/memsys"
)

// Sample is one windowed counter read.
type Sample struct {
	// Elapsed is the window length in simulated seconds.
	Elapsed float64
	// SocketBW is average granted bandwidth per socket, bytes/s.
	SocketBW []float64
	// SocketOfferedBW is average offered (demanded) bandwidth per socket.
	SocketOfferedBW []float64
	// SocketLatency is the time-averaged loaded memory latency per socket,
	// seconds.
	SocketLatency []float64
	// SocketSaturation is the average distress duty cycle per socket in
	// [0, 1] — what Kelp derives from FAST_ASSERTED / elapsed cycles.
	SocketSaturation []float64
	// SocketBackpressure is the average execution-rate multiplier imposed
	// by backpressure per socket.
	SocketBackpressure []float64
	// ControllerBW[socket][ctl] is average granted bandwidth per memory
	// controller — per NUMA subdomain when SNC is on. This is the
	// "high-priority subdomain bandwidth" measurement of Algorithm 1.
	ControllerBW [][]float64
	// ControllerLatency[socket][ctl] is the time-averaged loaded latency
	// per controller, seconds — per-subdomain latency under SNC.
	ControllerLatency [][]float64
}

// SubdomainBW returns the sampled bandwidth of (socket, subdomain).
func (s Sample) SubdomainBW(socket, subdomain int) float64 {
	if socket < 0 || socket >= len(s.ControllerBW) {
		return 0
	}
	ctls := s.ControllerBW[socket]
	if subdomain < 0 || subdomain >= len(ctls) {
		return 0
	}
	return ctls[subdomain]
}

// Bounds are optional plausibility limits for Sample.Check, expressed in
// the sample's own units. Zero fields disable the corresponding bound.
// Controllers derive them from their watermarks so a glitched counter that
// reads far outside any actionable range is rejected rather than acted on.
type Bounds struct {
	// MaxBW bounds every bandwidth reading (socket and per-controller),
	// bytes/s.
	MaxBW float64
	// MaxLatency bounds every loaded-latency reading, seconds.
	MaxLatency float64
}

// Check reports whether the sample is fit to act on: every reading must be
// finite and non-negative, saturation must be a duty cycle in [0, 1], and
// readings must fall inside the optional bounds. A controller that receives
// an error here should hold its last good decision rather than actuate on
// garbage (the paper's runtime trusts PMU deltas; a hardened one cannot).
func (s Sample) Check(b Bounds) error {
	checkVals := func(name string, vals []float64, max float64) error {
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("perfmon: %s[%d] = %v", name, i, v)
			}
			if v < 0 {
				return fmt.Errorf("perfmon: %s[%d] = %v is negative", name, i, v)
			}
			if max > 0 && v > max {
				return fmt.Errorf("perfmon: %s[%d] = %v exceeds bound %v", name, i, v, max)
			}
		}
		return nil
	}
	if math.IsNaN(s.Elapsed) || s.Elapsed < 0 {
		return fmt.Errorf("perfmon: elapsed = %v", s.Elapsed)
	}
	if err := checkVals("socket_bw", s.SocketBW, b.MaxBW); err != nil {
		return err
	}
	if err := checkVals("socket_latency", s.SocketLatency, b.MaxLatency); err != nil {
		return err
	}
	for i, v := range s.SocketSaturation {
		if math.IsNaN(v) || v < 0 || v > 1+1e-9 {
			return fmt.Errorf("perfmon: saturation[%d] = %v outside [0, 1]", i, v)
		}
	}
	for sock := range s.ControllerBW {
		if err := checkVals(fmt.Sprintf("controller_bw[%d]", sock), s.ControllerBW[sock], b.MaxBW); err != nil {
			return err
		}
	}
	for sock := range s.ControllerLatency {
		if err := checkVals(fmt.Sprintf("controller_latency[%d]", sock), s.ControllerLatency[sock], b.MaxLatency); err != nil {
			return err
		}
	}
	return nil
}

// SubdomainLatency returns the sampled loaded latency of (socket,
// subdomain), seconds.
func (s Sample) SubdomainLatency(socket, subdomain int) float64 {
	if socket < 0 || socket >= len(s.ControllerLatency) {
		return 0
	}
	ctls := s.ControllerLatency[socket]
	if subdomain < 0 || subdomain >= len(ctls) {
		return 0
	}
	return ctls[subdomain]
}

// Monitor accumulates memory-system observations.
type Monitor struct {
	sockets int
	cps     int

	elapsed acc
	bw      []acc
	offered []acc
	lat     []acc
	sat     []acc
	bp      []acc
	ctlBW   [][]acc
	ctlLat  [][]acc

	// Cumulative totals (never reset) for end-of-run reporting.
	totalBytes []float64

	// Rate cache: the per-second values derived from the last distinct
	// resolution, so steady-state recording (the same resolution integrated
	// tick after tick under incremental resolve) reduces to multiply-adds.
	// Keyed on (pointer, seq) — pointer identity alone is ambiguous because
	// the memory system's double-buffer arena reuses addresses.
	lastRes    *memsys.Resolution
	lastSeq    uint64
	rateBW     []float64
	rateOff    []float64
	rateLat    []float64
	rateSat    []float64
	rateBP     []float64
	rateCtlBW  []float64 // socket-major, sockets*cps
	rateCtlLat []float64
}

type acc struct{ sum float64 }

// NewMonitor returns a monitor for a node with the given socket count and
// controllers per socket.
func NewMonitor(sockets, controllersPerSocket int) (*Monitor, error) {
	if sockets < 1 || controllersPerSocket < 1 {
		return nil, fmt.Errorf("perfmon: bad shape %dx%d", sockets, controllersPerSocket)
	}
	m := &Monitor{
		sockets:    sockets,
		cps:        controllersPerSocket,
		bw:         make([]acc, sockets),
		offered:    make([]acc, sockets),
		lat:        make([]acc, sockets),
		sat:        make([]acc, sockets),
		bp:         make([]acc, sockets),
		ctlBW:      make([][]acc, sockets),
		totalBytes: make([]float64, sockets),
		rateBW:     make([]float64, sockets),
		rateOff:    make([]float64, sockets),
		rateLat:    make([]float64, sockets),
		rateSat:    make([]float64, sockets),
		rateBP:     make([]float64, sockets),
		rateCtlBW:  make([]float64, sockets*controllersPerSocket),
		rateCtlLat: make([]float64, sockets*controllersPerSocket),
	}
	m.ctlLat = make([][]acc, sockets)
	for s := range m.ctlBW {
		m.ctlBW[s] = make([]acc, controllersPerSocket)
		m.ctlLat[s] = make([]acc, controllersPerSocket)
	}
	return m, nil
}

// MustMonitor is NewMonitor that panics on invalid shape.
func MustMonitor(sockets, controllersPerSocket int) *Monitor {
	m, err := NewMonitor(sockets, controllersPerSocket)
	if err != nil {
		panic(err)
	}
	return m
}

// Record integrates one step's resolution over dt seconds. Deriving the
// per-second values from the resolution is the expensive part (per-socket
// aggregations over flows and controllers); they are cached and reused
// while the same resolution repeats, which under incremental resolve is
// every steady-state tick. Seq 0 marks a hand-constructed resolution with
// no computation stamp — those are re-derived every call, since the caller
// may mutate them in place between Records.
func (m *Monitor) Record(dt float64, res *memsys.Resolution) {
	if res == nil || dt <= 0 {
		return
	}
	if seq := res.Seq(); res != m.lastRes || seq != m.lastSeq || seq == 0 {
		m.cacheRates(res)
		m.lastRes, m.lastSeq = res, seq
	}
	m.elapsed.sum += dt
	for s := 0; s < m.sockets; s++ {
		m.bw[s].sum += m.rateBW[s] * dt
		m.offered[s].sum += m.rateOff[s] * dt
		m.lat[s].sum += m.rateLat[s] * dt
		m.sat[s].sum += m.rateSat[s] * dt
		m.bp[s].sum += m.rateBP[s] * dt
		m.totalBytes[s] += m.rateBW[s] * dt
		base := s * m.cps
		for c := 0; c < m.cps; c++ {
			m.ctlBW[s][c].sum += m.rateCtlBW[base+c] * dt
			m.ctlLat[s][c].sum += m.rateCtlLat[base+c] * dt
		}
	}
}

// cacheRates derives the per-second recording values from a resolution.
func (m *Monitor) cacheRates(res *memsys.Resolution) {
	for s := 0; s < m.sockets; s++ {
		m.rateBW[s] = res.SocketGranted(s)
		m.rateOff[s] = res.SocketOffered(s)
		m.rateLat[s] = res.MeanSocketLatency(s)
		m.rateSat[s] = res.MaxDistress(s)
		if s < len(res.SocketBackpressure) {
			m.rateBP[s] = res.SocketBackpressure[s]
		} else {
			m.rateBP[s] = 1
		}
	}
	for i := range m.rateCtlBW {
		m.rateCtlBW[i] = 0
		m.rateCtlLat[i] = 0
	}
	for _, c := range res.Controllers {
		if c.Socket < m.sockets && c.Index < m.cps {
			i := c.Socket*m.cps + c.Index
			m.rateCtlBW[i] += c.Granted
			m.rateCtlLat[i] += c.Latency
		}
	}
}

// Peek returns averages since the previous Window call WITHOUT resetting
// the accumulators — for observers (metrics scrapers) that must not steal
// the controller's window.
func (m *Monitor) Peek() Sample {
	return m.sample(false)
}

// Window returns averages since the previous Window call and resets the
// windowed accumulators. An empty window returns zeros with Elapsed 0.
func (m *Monitor) Window() Sample {
	return m.sample(true)
}

func (m *Monitor) sample(reset bool) Sample {
	el := m.elapsed.sum
	out := Sample{
		Elapsed:            el,
		SocketBW:           make([]float64, m.sockets),
		SocketOfferedBW:    make([]float64, m.sockets),
		SocketLatency:      make([]float64, m.sockets),
		SocketSaturation:   make([]float64, m.sockets),
		SocketBackpressure: make([]float64, m.sockets),
		ControllerBW:       make([][]float64, m.sockets),
		ControllerLatency:  make([][]float64, m.sockets),
	}
	for s := 0; s < m.sockets; s++ {
		out.ControllerBW[s] = make([]float64, m.cps)
		out.ControllerLatency[s] = make([]float64, m.cps)
		if el > 0 {
			out.SocketBW[s] = m.bw[s].sum / el
			out.SocketOfferedBW[s] = m.offered[s].sum / el
			out.SocketLatency[s] = m.lat[s].sum / el
			out.SocketSaturation[s] = m.sat[s].sum / el
			out.SocketBackpressure[s] = m.bp[s].sum / el
			for c := 0; c < m.cps; c++ {
				out.ControllerBW[s][c] = m.ctlBW[s][c].sum / el
				out.ControllerLatency[s][c] = m.ctlLat[s][c].sum / el
			}
		}
		if reset {
			m.bw[s] = acc{}
			m.offered[s] = acc{}
			m.lat[s] = acc{}
			m.sat[s] = acc{}
			m.bp[s] = acc{}
			for c := 0; c < m.cps; c++ {
				m.ctlBW[s][c] = acc{}
				m.ctlLat[s][c] = acc{}
			}
		}
	}
	if reset {
		m.elapsed = acc{}
	}
	return out
}

// State is an opaque snapshot of a monitor's accumulators, used by the
// node-level warm-start snapshot. It shares no memory with the monitor.
type State struct {
	sockets, cps int
	elapsed      acc
	bw, offered  []acc
	lat, sat, bp []acc
	ctlBW        [][]acc
	ctlLat       [][]acc
	totalBytes   []float64
}

func copyAccs(a []acc) []acc { return append([]acc(nil), a...) }

func copyAccs2(a [][]acc) [][]acc {
	out := make([][]acc, len(a))
	for i := range a {
		out[i] = copyAccs(a[i])
	}
	return out
}

// State snapshots the monitor's accumulators.
func (m *Monitor) State() State {
	return State{
		sockets:    m.sockets,
		cps:        m.cps,
		elapsed:    m.elapsed,
		bw:         copyAccs(m.bw),
		offered:    copyAccs(m.offered),
		lat:        copyAccs(m.lat),
		sat:        copyAccs(m.sat),
		bp:         copyAccs(m.bp),
		ctlBW:      copyAccs2(m.ctlBW),
		ctlLat:     copyAccs2(m.ctlLat),
		totalBytes: append([]float64(nil), m.totalBytes...),
	}
}

// Restore installs a snapshot taken by State on a monitor of the same shape.
func (m *Monitor) Restore(st State) error {
	if st.sockets != m.sockets || st.cps != m.cps {
		return fmt.Errorf("perfmon: snapshot shape %dx%d, monitor %dx%d",
			st.sockets, st.cps, m.sockets, m.cps)
	}
	// The rate cache is derived, not state: drop it so the next Record
	// re-derives from its resolution.
	m.lastRes, m.lastSeq = nil, 0
	m.elapsed = st.elapsed
	copy(m.bw, st.bw)
	copy(m.offered, st.offered)
	copy(m.lat, st.lat)
	copy(m.sat, st.sat)
	copy(m.bp, st.bp)
	for s := range m.ctlBW {
		copy(m.ctlBW[s], st.ctlBW[s])
		copy(m.ctlLat[s], st.ctlLat[s])
	}
	copy(m.totalBytes, st.totalBytes)
	return nil
}

// TotalBytes returns cumulative DRAM bytes moved on a socket since start.
func (m *Monitor) TotalBytes(socket int) float64 {
	if socket < 0 || socket >= len(m.totalBytes) {
		return 0
	}
	return m.totalBytes[socket]
}
