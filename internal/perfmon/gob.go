package perfmon

import (
	"bytes"
	"encoding/gob"
)

// State keeps its fields unexported (it is an opaque snapshot handle), so
// crossing a process restart requires explicit gob hooks. Accumulators are
// flattened to plain float64 slices; gob moves float64 values by bit
// pattern, so the restored monitor reproduces the exact same averages.

type stateWire struct {
	Sockets, CPS int
	Elapsed      float64
	BW, Offered  []float64
	Lat, Sat, BP []float64
	CtlBW        [][]float64
	CtlLat       [][]float64
	TotalBytes   []float64
}

func accsToFloats(a []acc) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = v.sum
	}
	return out
}

func accsToFloats2(a [][]acc) [][]float64 {
	out := make([][]float64, len(a))
	for i := range a {
		out[i] = accsToFloats(a[i])
	}
	return out
}

func floatsToAccs(f []float64) []acc {
	out := make([]acc, len(f))
	for i, v := range f {
		out[i] = acc{sum: v}
	}
	return out
}

func floatsToAccs2(f [][]float64) [][]acc {
	out := make([][]acc, len(f))
	for i := range f {
		out[i] = floatsToAccs(f[i])
	}
	return out
}

// GobEncode implements gob.GobEncoder.
func (st State) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(stateWire{
		Sockets: st.sockets, CPS: st.cps, Elapsed: st.elapsed.sum,
		BW: accsToFloats(st.bw), Offered: accsToFloats(st.offered),
		Lat: accsToFloats(st.lat), Sat: accsToFloats(st.sat), BP: accsToFloats(st.bp),
		CtlBW: accsToFloats2(st.ctlBW), CtlLat: accsToFloats2(st.ctlLat),
		TotalBytes: st.totalBytes,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (st *State) GobDecode(data []byte) error {
	var w stateWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	st.sockets, st.cps, st.elapsed = w.Sockets, w.CPS, acc{sum: w.Elapsed}
	st.bw, st.offered = floatsToAccs(w.BW), floatsToAccs(w.Offered)
	st.lat, st.sat, st.bp = floatsToAccs(w.Lat), floatsToAccs(w.Sat), floatsToAccs(w.BP)
	st.ctlBW, st.ctlLat = floatsToAccs2(w.CtlBW), floatsToAccs2(w.CtlLat)
	st.totalBytes = w.TotalBytes
	return nil
}
