// Package clusterfaults is the cluster-level sibling of internal/faults: a
// deterministic, seedable fault model for distributed lock-step training.
// Where internal/faults perturbs one node's controller signal path, this
// package injects the failures a real training fleet sees between nodes —
// workers that crash and restart, workers that hang at a barrier, and
// workers whose interference level escalates mid-run. The recovery
// machinery in internal/cluster (checkpoint/restore, barrier timeouts with
// a straggler policy, bounded restart retry) is its defensive counterpart,
// and the pair turns the cluster reproduction from "every worker is
// immortal" into a goodput study: useful steps per wall-clock second net of
// downtime and rework.
//
// Fault classes are rates per simulated second of cluster time, not
// per-step probabilities, so a policy that shortens steps (Kelp protecting
// the straggler) sees the same failure intensity in wall-clock terms but
// loses fewer steps of work per failure — exactly the fleet-goodput
// argument for isolation.
//
// All randomness comes from private xorshift64* generators seeded from
// Spec.Seed — no math/rand global state, no wall clock — with one
// independent stream per (fault class, worker) pair, so identical
// (seed, spec, worker count) triples replay identical fault sequences
// regardless of which classes are enabled together. A nil *Injector is a
// valid no-op on every method, so the cluster runtime needs no branching;
// with no injector attached every step passes through untouched.
package clusterfaults

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Spec configures the injector. Crash, Hang and Degrade are rates per
// simulated second of per-worker execution (an exponential hazard: a step
// of duration d fails with probability 1 - exp(-rate*d)); the remaining
// fields shape each fault. The zero value disables every class.
type Spec struct {
	// Seed roots the injector's private PRNG streams.
	Seed uint64
	// Crash is the per-second rate at which a worker's node is lost
	// mid-step. A crash aborts the in-flight global step and rolls the
	// cluster back to its last checkpoint.
	Crash float64
	// Downtime is how long a crashed worker stays down before its first
	// restart attempt, seconds. 0 selects DefaultDowntime.
	Downtime float64
	// RestartFail is the probability each restart attempt fails (the node
	// comes back wedged and must be retried after backoff).
	RestartFail float64
	// Hang is the per-second rate at which a worker stalls at the barrier:
	// its current step stretches by HangDur.
	Hang float64
	// HangDur is how long a hung worker stalls, seconds. 0 selects
	// DefaultHangDur.
	HangDur float64
	// Degrade is the per-second rate at which a worker's colocated
	// aggressor escalates one level, permanently (at most once per
	// worker). The degraded step-time series is measured by actually
	// simulating the worker under the escalated interference, so an
	// isolation policy shrinks the degradation it causes.
	Degrade float64
}

// Defaults for the duration-shaped fields when the spec leaves them zero.
const (
	// DefaultDowntime is the restart downtime after a crash, seconds.
	DefaultDowntime = 2.0
	// DefaultHangDur is the barrier stall of a hung worker, seconds.
	DefaultHangDur = 1.0
)

// Enabled reports whether any fault class has a non-zero rate.
func (s Spec) Enabled() bool {
	return s.Crash > 0 || s.Hang > 0 || s.Degrade > 0
}

// Validate reports whether rates are non-negative and finite, RestartFail
// is a probability, and the durations are sane.
func (s Spec) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"crash", s.Crash}, {"hang", s.Hang}, {"degrade", s.Degrade},
	} {
		if math.IsNaN(r.v) || math.IsInf(r.v, 0) || r.v < 0 {
			return fmt.Errorf("clusterfaults: %s = %v, want a finite rate >= 0 per second", r.name, r.v)
		}
	}
	if math.IsNaN(s.RestartFail) || s.RestartFail < 0 || s.RestartFail > 1 {
		return fmt.Errorf("clusterfaults: restartfail = %v, want a probability in [0, 1]", s.RestartFail)
	}
	for _, d := range []struct {
		name string
		v    float64
	}{
		{"downtime", s.Downtime}, {"hangdur", s.HangDur},
	} {
		if math.IsNaN(d.v) || math.IsInf(d.v, 0) || d.v < 0 {
			return fmt.Errorf("clusterfaults: %s = %v, want a finite duration >= 0 (or 0 for the default)", d.name, d.v)
		}
	}
	return nil
}

// String renders the spec in ParseSpec's key=value format, omitting zero
// fields, with keys in a fixed order.
func (s Spec) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%v", k, v))
		}
	}
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	add("crash", s.Crash)
	add("downtime", s.Downtime)
	add("restartfail", s.RestartFail)
	add("hang", s.Hang)
	add("hangdur", s.HangDur)
	add("degrade", s.Degrade)
	if len(parts) == 0 {
		return "off"
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the -cfaults flag format: a comma-separated list of
// key=value pairs, e.g. "seed=7,crash=0.05,downtime=2,restartfail=0.3".
// Keys are seed, crash, downtime, restartfail, hang, hangdur, degrade. An
// empty string (and "off") yields the disabled zero Spec.
func ParseSpec(str string) (Spec, error) {
	var s Spec
	str = strings.TrimSpace(str)
	if str == "" || str == "off" {
		return s, nil
	}
	for _, kv := range strings.Split(str, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Spec{}, fmt.Errorf("clusterfaults: %q is not key=value", kv)
		}
		k = strings.ToLower(strings.TrimSpace(k))
		v = strings.TrimSpace(v)
		if k == "seed" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("clusterfaults: seed: %w", err)
			}
			s.Seed = n
			continue
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("clusterfaults: %s: %w", k, err)
		}
		switch k {
		case "crash":
			s.Crash = f
		case "downtime":
			s.Downtime = f
		case "restartfail":
			s.RestartFail = f
		case "hang":
			s.Hang = f
		case "hangdur":
			s.HangDur = f
		case "degrade":
			s.Degrade = f
		default:
			return Spec{}, fmt.Errorf("clusterfaults: unknown key %q", k)
		}
	}
	return s, s.Validate()
}

// xorshift is an xorshift64* generator — small, fast, and private to the
// injector so fault draws never perturb (or are perturbed by) the
// simulation's own RNG streams. Same construction as internal/faults.
type xorshift struct{ state uint64 }

// splitmix64 expands a seed into a well-mixed nonzero state.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// newStream derives an independent generator from the root seed, a stable
// class name and a worker index, so enabling one fault class never shifts
// another's draw sequence, and worker i's fate never depends on how many
// draws worker j consumed.
func newStream(seed uint64, name string, worker int) *xorshift {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	h ^= uint64(worker) + 0x9E37
	h *= 1099511628211
	s := splitmix64(seed ^ h)
	if s == 0 {
		s = 0x2545F4914F6CDD1D
	}
	return &xorshift{state: s}
}

func (x *xorshift) next() uint64 {
	s := x.state
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	x.state = s
	return s * 0x2545F4914F6CDD1D
}

// float64 draws a uniform value in [0, 1).
func (x *xorshift) float64() float64 {
	return float64(x.next()>>11) / (1 << 53)
}

// Injector draws the fate of one cluster run's workers. Construct with
// NewInjector; a nil *Injector is a valid no-op target for every method.
// An Injector belongs to a single cluster replay and is consulted only
// from its single-threaded composition loop, so it needs no locking.
type Injector struct {
	spec    Spec
	crash   []*xorshift
	hang    []*xorshift
	degrade []*xorshift
	restart []*xorshift
	counts  map[string]uint64
}

// NewInjector builds an injector for a validated spec and a fixed worker
// count. A disabled spec is legal: every method becomes a pass-through
// (but, unlike a nil injector, still burns PRNG draws so streams stay
// comparable across specs).
func NewInjector(s Spec, workers int) (*Injector, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if workers < 1 {
		return nil, fmt.Errorf("clusterfaults: workers = %d", workers)
	}
	if s.Downtime == 0 {
		s.Downtime = DefaultDowntime
	}
	if s.HangDur == 0 {
		s.HangDur = DefaultHangDur
	}
	inj := &Injector{spec: s, counts: make(map[string]uint64)}
	for w := 0; w < workers; w++ {
		inj.crash = append(inj.crash, newStream(s.Seed, "crash", w))
		inj.hang = append(inj.hang, newStream(s.Seed, "hang", w))
		inj.degrade = append(inj.degrade, newStream(s.Seed, "degrade", w))
		inj.restart = append(inj.restart, newStream(s.Seed, "restart", w))
	}
	return inj, nil
}

// MustInjector is NewInjector that panics on an invalid spec.
func MustInjector(s Spec, workers int) *Injector {
	i, err := NewInjector(s, workers)
	if err != nil {
		panic(err)
	}
	return i
}

// Spec returns the injector's (normalized) configuration.
func (i *Injector) Spec() Spec {
	if i == nil {
		return Spec{}
	}
	return i.spec
}

// rateHit draws once from x and reports whether an exponential hazard of
// the given per-second rate fired over an exposure of dur seconds. The
// draw is consumed even at rate 0 so per-stream sequences stay aligned
// across specs that differ only in rates.
func rateHit(x *xorshift, rate, dur float64) bool {
	p := -math.Expm1(-rate * dur) // 1 - exp(-rate*dur), accurate near 0
	return x.float64() < p
}

// Crash reports whether worker w's node is lost during a step of the
// given duration.
func (i *Injector) Crash(w int, dur float64) bool {
	if i == nil {
		return false
	}
	if !rateHit(i.crash[w], i.spec.Crash, dur) {
		return false
	}
	i.counts["crash"]++
	return true
}

// Hang reports whether worker w stalls at the barrier during a step of
// the given duration.
func (i *Injector) Hang(w int, dur float64) bool {
	if i == nil {
		return false
	}
	if !rateHit(i.hang[w], i.spec.Hang, dur) {
		return false
	}
	i.counts["hang"]++
	return true
}

// Degrade reports whether worker w's aggressor escalates during a step of
// the given duration. The caller is responsible for making escalation
// one-shot; the stream keeps drawing either way so sequences stay aligned.
func (i *Injector) Degrade(w int, dur float64) bool {
	if i == nil {
		return false
	}
	if !rateHit(i.degrade[w], i.spec.Degrade, dur) {
		return false
	}
	i.counts["degrade"]++
	return true
}

// RestartFails reports whether worker w's next restart attempt fails.
func (i *Injector) RestartFails(w int) bool {
	if i == nil {
		return false
	}
	if i.restart[w].float64() >= i.spec.RestartFail {
		return false
	}
	i.counts["restart.fail"]++
	return true
}

// Counts returns how many faults of each class were injected so far, as a
// class → count map with stable keys (crash, hang, degrade, restart.fail).
func (i *Injector) Counts() map[string]uint64 {
	if i == nil {
		return nil
	}
	out := make(map[string]uint64, len(i.counts))
	for k, v := range i.counts {
		out[k] = v
	}
	return out
}

// Total returns the total number of injected faults across all classes.
func (i *Injector) Total() uint64 {
	if i == nil {
		return 0
	}
	var t uint64
	for _, v := range i.counts {
		t += v
	}
	return t
}
