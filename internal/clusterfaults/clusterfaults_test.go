package clusterfaults

import (
	"reflect"
	"strings"
	"testing"
)

func TestSpecStringParseRoundTrip(t *testing.T) {
	specs := []Spec{
		{},
		{Seed: 7, Crash: 0.05},
		{Seed: 9, Crash: 0.06, Downtime: 1.5, RestartFail: 0.3, Hang: 0.25, HangDur: 0.6, Degrade: 0.1},
		{Hang: 0.125},
	}
	for _, s := range specs {
		got, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s.String(), err)
		}
		if got != s {
			t.Errorf("round trip: %q -> %+v, want %+v", s.String(), got, s)
		}
	}
	if (Spec{}).String() != "off" {
		t.Errorf("zero spec renders %q, want off", (Spec{}).String())
	}
	for _, in := range []string{"", "off", "  off  "} {
		s, err := ParseSpec(in)
		if err != nil || s.Enabled() {
			t.Errorf("ParseSpec(%q) = %+v, %v; want disabled zero spec", in, s, err)
		}
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"crash",              // not key=value
		"bogus=1",            // unknown key
		"crash=x",            // not a number
		"seed=-1",            // seed must be uint
		"crash=-0.5",         // negative rate
		"restartfail=1.5",    // not a probability
		"downtime=-2",        // negative duration
		"hangdur=NaN",        // NaN duration
		"crash=0.1,hang=Inf", // infinite rate
	} {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted", in)
		}
	}
}

func TestEnabled(t *testing.T) {
	if (Spec{}).Enabled() {
		t.Error("zero spec enabled")
	}
	// Shape-only fields never enable injection on their own.
	if (Spec{Seed: 1, Downtime: 5, HangDur: 2, RestartFail: 1}).Enabled() {
		t.Error("spec with only shaping fields enabled")
	}
	for _, s := range []Spec{{Crash: 0.1}, {Hang: 0.1}, {Degrade: 0.1}} {
		if !s.Enabled() {
			t.Errorf("%+v not enabled", s)
		}
	}
}

func TestNilInjectorIsNoOp(t *testing.T) {
	var i *Injector
	if i.Crash(0, 1) || i.Hang(0, 1) || i.Degrade(0, 1) || i.RestartFails(0) {
		t.Error("nil injector fired a fault")
	}
	if i.Total() != 0 || i.Counts() != nil {
		t.Error("nil injector has counts")
	}
	if i.Spec() != (Spec{}) {
		t.Error("nil injector has a spec")
	}
}

func TestInjectorValidation(t *testing.T) {
	if _, err := NewInjector(Spec{Crash: -1}, 2); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewInjector(Spec{}, 0); err == nil {
		t.Error("zero workers accepted")
	}
	inj := MustInjector(Spec{Crash: 0.1}, 2)
	if inj.Spec().Downtime != DefaultDowntime || inj.Spec().HangDur != DefaultHangDur {
		t.Errorf("defaults not resolved: %+v", inj.Spec())
	}
}

// drawAll replays a fixed consultation pattern and returns every outcome.
func drawAll(inj *Injector, workers, steps int) []bool {
	var out []bool
	for s := 0; s < steps; s++ {
		for w := 0; w < workers; w++ {
			out = append(out, inj.Hang(w, 0.05))
			out = append(out, inj.Crash(w, 0.05))
			out = append(out, inj.Degrade(w, 0.05))
		}
	}
	for w := 0; w < workers; w++ {
		out = append(out, inj.RestartFails(w))
	}
	return out
}

func TestSameSeedSameFaultSequence(t *testing.T) {
	spec := Spec{Seed: 123, Crash: 2, Hang: 3, Degrade: 1, RestartFail: 0.5}
	a := drawAll(MustInjector(spec, 3), 3, 200)
	b := drawAll(MustInjector(spec, 3), 3, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical (seed, spec) diverged")
	}
	spec2 := spec
	spec2.Seed = 124
	c := drawAll(MustInjector(spec2, 3), 3, 200)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

// Enabling one class must not shift another class's stream: crash draws
// are identical whether or not hangs are also enabled.
func TestClassStreamsAreIndependent(t *testing.T) {
	crashOnly := MustInjector(Spec{Seed: 5, Crash: 2}, 2)
	crashAndHang := MustInjector(Spec{Seed: 5, Crash: 2, Hang: 5}, 2)
	for s := 0; s < 500; s++ {
		for w := 0; w < 2; w++ {
			crashAndHang.Hang(w, 0.05) // extra draws on the hang streams
			a := crashOnly.Crash(w, 0.05)
			b := crashAndHang.Crash(w, 0.05)
			if a != b {
				t.Fatalf("crash stream shifted at step %d worker %d", s, w)
			}
		}
	}
}

// Worker streams are independent: adding a worker never changes an
// existing worker's fate.
func TestWorkerStreamsAreIndependent(t *testing.T) {
	spec := Spec{Seed: 11, Crash: 2}
	two := MustInjector(spec, 2)
	three := MustInjector(spec, 3)
	for s := 0; s < 500; s++ {
		three.Crash(2, 0.05) // worker 2 consumes its own stream only
		for w := 0; w < 2; w++ {
			if two.Crash(w, 0.05) != three.Crash(w, 0.05) {
				t.Fatalf("worker %d fate changed with cluster size at step %d", w, s)
			}
		}
	}
}

func TestRateSemantics(t *testing.T) {
	inj := MustInjector(Spec{Seed: 1, Hang: 1}, 1) // crash rate 0
	for s := 0; s < 1000; s++ {
		if inj.Crash(0, 10) {
			t.Fatal("zero-rate class fired")
		}
	}
	// An enormous hazard over a long exposure practically always fires.
	hot := MustInjector(Spec{Seed: 1, Crash: 1000}, 1)
	fired := 0
	for s := 0; s < 100; s++ {
		if hot.Crash(0, 1) {
			fired++
		}
	}
	if fired < 100 {
		t.Errorf("saturated hazard fired %d/100", fired)
	}
	if hot.Total() != uint64(fired) || hot.Counts()["crash"] != uint64(fired) {
		t.Errorf("counts = %v, total = %d, want %d crashes", hot.Counts(), hot.Total(), fired)
	}
}

func TestStringOrderIsStable(t *testing.T) {
	s := Spec{Seed: 3, Degrade: 0.1, Crash: 0.2, Hang: 0.3}
	want := "seed=3,crash=0.2,hang=0.3,degrade=0.1"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if !strings.HasPrefix(s.String(), "seed=") {
		t.Error("seed not first")
	}
}
