#!/usr/bin/env bash
# Documentation hygiene checks, run by the CI docs job:
#
#   1. every internal/ package carries a package doc comment
#      ("// Package <name> ..." in some file of the package);
#   2. every relative markdown link in README.md, DESIGN.md, EXPERIMENTS.md
#      and docs/*.md resolves to a file or directory in the repo.
#   3. the advertised runnable examples exist and carry an `// Output:`
#      marker, so `go test` executes them and godoc renders them (the test
#      job actually runs them; this keeps them from being silently
#      deleted or demoted to non-verified examples).
#
# Exits non-zero listing every violation (it does not stop at the first).
set -u
cd "$(dirname "$0")/.."

fail=0

# --- 1. package doc comments -------------------------------------------------
for dir in internal/*/; do
    pkg=$(basename "$dir")
    if ! grep -q "^// Package $pkg " "$dir"*.go 2>/dev/null; then
        echo "check_docs: internal/$pkg has no '// Package $pkg ...' doc comment"
        fail=1
    fi
done

# --- 2. relative markdown links ----------------------------------------------
# Collect inline [text](target) links, drop absolute URLs and pure anchors,
# strip any #fragment, and test the target relative to the linking file.
# NOTE: the while loop reads from process substitution, not a pipe — a pipe
# would run the loop in a subshell and lose the fail flag.
docs=$(ls README.md DESIGN.md EXPERIMENTS.md docs/*.md 2>/dev/null)
for doc in $docs; do
    while IFS= read -r target; do
        case "$target" in
        http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path=${target%%#*}
        [ -z "$path" ] && continue
        if [ ! -e "$(dirname "$doc")/$path" ]; then
            echo "check_docs: $doc links to missing file: $target"
            fail=1
        fi
    done < <(grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/.*(\(.*\))/\1/')
done

# --- 3. runnable examples ----------------------------------------------------
# pkg-dir:ExampleName pairs that the docs reference as runnable sessions.
examples="internal/fleet:ExampleRun internal/pool:ExampleCollect internal/httpd:ExampleServer_sessions"
for pair in $examples; do
    dir=${pair%%:*}
    name=${pair##*:}
    if ! grep -q "^func $name(" "$dir"/*_test.go 2>/dev/null; then
        echo "check_docs: $dir is missing runnable example func $name"
        fail=1
        continue
    fi
    if ! grep -rq "// Output:" "$dir"/example_test.go 2>/dev/null; then
        echo "check_docs: $dir/example_test.go has no '// Output:' marker ($name is not a verified example)"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "check_docs: OK"
