#!/usr/bin/env sh
# bench.sh — run the performance suite and emit a BENCH_<date>.json snapshot.
#
# Usage:
#   scripts/bench.sh              # micro + headline figure benchmarks
#   scripts/bench.sh -quick       # everything at -benchtime=1x (CI smoke)
#   scripts/bench.sh -micro       # hot-path microbenchmarks only
#   scripts/bench.sh -f           # overwrite an existing same-day snapshot
#   BENCH_OUT=out.json scripts/bench.sh
#
# The snapshot records ns/op, B/op, allocs/op and every custom metric
# (the BenchmarkFigure* headline numbers) per benchmark, so successive
# PRs have a perf trajectory to compare against. Reading and updating the
# snapshot is documented in docs/PERFORMANCE.md.
set -eu

cd "$(dirname "$0")/.."

MODE=full
FORCE=0
for arg in "$@"; do
	case "$arg" in
	-quick) MODE=quick ;;
	-micro) MODE=micro ;;
	-f) FORCE=1 ;;
	*)
		echo "bench.sh: unknown argument $arg" >&2
		exit 2
		;;
	esac
done

OUT=${BENCH_OUT:-BENCH_$(date +%F).json}
# A same-day snapshot is usually a committed baseline; refuse to clobber it
# silently — a half-finished rerun would destroy the numbers later PRs
# compare against.
if [ -e "$OUT" ] && [ "$FORCE" -ne 1 ]; then
	echo "bench.sh: $OUT already exists; rerun with -f to overwrite it" >&2
	exit 1
fi
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

# Hot-path microbenchmarks: the allocation-free simulation step, the
# zero-cost disabled instrumentation path, the fleet composition tick
# (placement + per-job cluster replay over pre-measured shapes), and the
# session server's advance round trip and middleware tax.
MICRO_PKGS="./internal/memsys ./internal/node ./internal/sim ./internal/events ./internal/fleet ./internal/httpd"
MICRO_BENCH='BenchmarkResolve|BenchmarkNodeStep|BenchmarkEngineTick|BenchmarkEmit|BenchmarkFleetTick|BenchmarkSessionAdvance|BenchmarkMiddlewareOverhead'

case "$MODE" in
quick)
	go test -run='^$' -bench="$MICRO_BENCH" -benchtime=1x -benchmem $MICRO_PKGS | tee "$RAW"
	;;
micro)
	go test -run='^$' -bench="$MICRO_BENCH" -benchmem $MICRO_PKGS | tee "$RAW"
	;;
full)
	go test -run='^$' -bench="$MICRO_BENCH" -benchmem $MICRO_PKGS | tee "$RAW"
	# Headline figure benchmarks: one full run each — the custom metrics
	# (figure headline numbers) are what the snapshot tracks.
	go test -run='^$' -bench='BenchmarkFigure|BenchmarkTable' -benchtime=1x -benchmem . | tee -a "$RAW"
	;;
esac

# Render the raw `go test -bench` output as JSON. Benchmark lines are
#   Name-N  <iters>  <value> <unit>  <value> <unit> ...
# and `pkg:` lines scope the names.
awk -v date="$(date +%F)" -v goversion="$(go version | cut -d' ' -f3)" -v mode="$MODE" '
BEGIN { printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"mode\": \"%s\",\n  \"benchmarks\": [", date, goversion, mode }
/^pkg: / { pkg = $2 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (n++) printf ","
	printf "\n    {\"package\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"metrics\": {", pkg, name, $2
	m = 0
	for (i = 3; i < NF; i += 2) {
		if (m++) printf ", "
		printf "\"%s\": %s", $(i + 1), $i
	}
	printf "}}"
}
END { printf "\n  ]\n}\n" }
' "$RAW" >"$OUT"

echo "snapshot: $OUT"
