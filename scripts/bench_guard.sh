#!/usr/bin/env sh
# bench_guard.sh — fail when a guarded hot-path benchmark regresses more
# than 25% against the newest committed BENCH_*.json snapshot.
#
# Guarded: BenchmarkResolveSteady (the memory-system fixed point) and
# BenchmarkEngineTick (simulation dispatch) — the two numbers every
# experiment cell multiplies by millions of ticks — plus BenchmarkFleetTick
# (fleet placement + goodput composition, the O(machines) outer loop of the
# fleet study), plus the session server's BenchmarkSessionAdvance and
# BenchmarkMiddlewareOverhead (the kelpd request hot path). The fresh
# measurement is
# the minimum of -count runs; the gate is cmd/benchguard, which needs no
# installs. benchstat, when already on PATH, additionally prints its
# statistical comparison (report only — the gate stays deterministic).
#
# Usage:
#   scripts/bench_guard.sh            # compare against newest BENCH_*.json
#   BENCH_BASE=BENCH_x.json scripts/bench_guard.sh
set -eu

cd "$(dirname "$0")/.."

BASE=${BENCH_BASE:-$(ls BENCH_*.json 2>/dev/null | sort | tail -1 || true)}
if [ -z "$BASE" ]; then
	echo "bench_guard.sh: no BENCH_*.json baseline committed; nothing to guard" >&2
	exit 0
fi
echo "baseline: $BASE"

RAW=$(mktemp)
OLD=$(mktemp)
trap 'rm -f "$RAW" "$OLD"' EXIT

go test -run='^$' -bench='^BenchmarkResolveSteady$' -count=5 ./internal/memsys | tee "$RAW"
go test -run='^$' -bench='^BenchmarkEngineTick$' -count=5 ./internal/sim | tee -a "$RAW"
go test -run='^$' -bench='^BenchmarkFleetTick$' -count=5 ./internal/fleet | tee -a "$RAW"
go test -run='^$' -bench='^(BenchmarkSessionAdvance|BenchmarkMiddlewareOverhead)$' -count=5 ./internal/httpd | tee -a "$RAW"

if command -v benchstat >/dev/null 2>&1; then
	go run ./cmd/benchguard -baseline "$BASE" -emit-baseline "$OLD"
	benchstat "$OLD" "$RAW" || true
fi

go run ./cmd/benchguard -baseline "$BASE" -bench "$RAW"
