// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablations of the design choices DESIGN.md calls out. Each benchmark
// runs the corresponding experiment and reports the headline numbers as
// custom metrics; run with -v to see the full result tables.
//
//	go test -bench=. -benchmem
package kelp_test

import (
	"testing"

	"kelp/internal/experiments"
	"kelp/internal/fleet"
	"kelp/internal/node"
	"kelp/internal/policy"
	"kelp/internal/sim"
	"kelp/internal/trace"
	"kelp/internal/workload"
)

// benchHarness returns a harness with windows sized for benchmarking: long
// enough for every controller to converge, short enough to keep the suite
// minutes, not hours.
func benchHarness() *experiments.Harness {
	h := experiments.NewHarness()
	h.Warmup = 1500 * sim.Millisecond
	h.Measure = 1 * sim.Second
	return h
}

func BenchmarkTable1_WorkloadInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 4 {
			b.Fatal("inventory incomplete")
		}
	}
	b.Log("\n" + experiments.Table1Table().String())
}

func BenchmarkFigure2_FleetBandwidthCDF(b *testing.B) {
	var above70 float64
	var rows []experiments.Figure2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, above70, err = experiments.Figure2(fleet.DefaultCensusConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(above70*100, "%machines>70%BW")
	b.Log("\n" + experiments.Figure2Table(rows, above70).String())
}

func BenchmarkFigure3_ExecutionTimeline(b *testing.B) {
	var r *trace.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure3(trace.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.CPUStretch, "cpu-stretch")
	b.ReportMetric(r.AccelStretch, "accel-stretch")
	b.Log("\n" + experiments.Figure3Table(r).String())
}

func BenchmarkFigure5_InterferenceSensitivity(b *testing.B) {
	var rows []experiments.SensitivityRow
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		var err error
		rows, err = experiments.Figure5(h)
		if err != nil {
			b.Fatal(err)
		}
	}
	avgs := experiments.SensitivityAverages(rows)
	b.ReportMetric(avgs[experiments.LLCAggressor], "avg-perf-LLC")
	b.ReportMetric(avgs[experiments.DRAMAggressor], "avg-perf-DRAM")
	b.Log("\n" + experiments.SensitivityTable("Figure 5", rows).String())
}

func BenchmarkFigure7_BackpressureSweep(b *testing.B) {
	var rows []experiments.BackpressureRow
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		var err error
		rows, err = experiments.Figure7(h)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.ML == experiments.CNN1 && r.Level.String() == "H" && r.PrefetchersOffPct == 0 {
			b.ReportMetric(r.Perf, "CNN1-H-perf-at-0%off")
		}
	}
	b.Log("\n" + experiments.BackpressureTable(rows).String())
}

func BenchmarkFigure9_CNN1Stitch(b *testing.B) {
	var rows []experiments.CaseStudyRow
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		var err error
		rows, err = experiments.Figure9(h)
		if err != nil {
			b.Fatal(err)
		}
	}
	experiments.NormalizeCPU(rows, 1)
	for _, r := range rows {
		if r.Load == 6 && r.Policy == policy.Baseline {
			b.ReportMetric(r.MLPerf, "BL-CNN1-perf-at-6")
		}
		if r.Load == 6 && r.Policy == policy.Kelp {
			b.ReportMetric(r.MLPerf, "KP-CNN1-perf-at-6")
		}
	}
	b.Log("\n" + experiments.CaseStudyTable("Figures 9 & 11", "Stitch instances", rows).String())
}

func BenchmarkFigure10_RNN1CPUML(b *testing.B) {
	var rows []experiments.CaseStudyRow
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		var err error
		rows, err = experiments.Figure10(h)
		if err != nil {
			b.Fatal(err)
		}
	}
	experiments.NormalizeCPU(rows, 2)
	for _, r := range rows {
		if r.Load == 16 && r.Policy == policy.Kelp {
			b.ReportMetric(r.MLPerf, "KP-RNN1-QPS-at-16")
			b.ReportMetric(r.MLTail, "KP-RNN1-tail-at-16")
		}
	}
	b.Log("\n" + experiments.CaseStudyTable("Figures 10 & 12", "CPUML threads", rows).String())
}

// Figures 11 and 12 are the actuator traces of the two case studies; they
// come from the same runs, so these benches validate the recorded actuator
// values specifically.
func BenchmarkFigure11_ActuatorsCNN1Stitch(b *testing.B) {
	var rows []experiments.CaseStudyRow
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		var err error
		rows, err = experiments.Figure9(h)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Load == 6 {
			switch r.Policy {
			case policy.CoreThrottle:
				b.ReportMetric(float64(r.ThrottleCores), "CT-cores-at-6")
			case policy.KelpSubdomain:
				b.ReportMetric(float64(r.Prefetchers), "KPSD-prefetchers-at-6")
			case policy.Kelp:
				b.ReportMetric(float64(r.BackfillCores), "KP-backfill-at-6")
			}
		}
	}
}

func BenchmarkFigure12_ActuatorsRNN1CPUML(b *testing.B) {
	var rows []experiments.CaseStudyRow
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		var err error
		rows, err = experiments.Figure10(h)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Load == 16 {
			switch r.Policy {
			case policy.CoreThrottle:
				b.ReportMetric(float64(r.ThrottleCores), "CT-cores-at-16")
			case policy.KelpSubdomain:
				b.ReportMetric(float64(r.Prefetchers), "KPSD-prefetchers-at-16")
			case policy.Kelp:
				b.ReportMetric(float64(r.BackfillCores), "KP-backfill-at-16")
			}
		}
	}
}

func BenchmarkFigure13_OverallResults(b *testing.B) {
	var rows []experiments.OverallRow
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		var err error
		rows, err = experiments.Figure13(h)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range experiments.Summarize(rows) {
		switch s.Policy {
		case policy.Baseline:
			b.ReportMetric(s.MeanMLSlowdown, "BL-ml-slowdown")
		case policy.Kelp:
			b.ReportMetric(s.MeanMLSlowdown, "KP-ml-slowdown")
			b.ReportMetric(s.MeanCPUThroughput, "KP-cpu-throughput")
		}
	}
	b.Log("\n" + experiments.OverallTable(rows).String())
}

func BenchmarkFigure14_Efficiency(b *testing.B) {
	var rows []experiments.OverallRow
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		var err error
		rows, err = experiments.Figure13(h)
		if err != nil {
			b.Fatal(err)
		}
	}
	effs := experiments.EfficiencyAverages(experiments.Figure14(rows))
	b.ReportMetric(effs[policy.CoreThrottle], "eff-CT")
	b.ReportMetric(effs[policy.KelpSubdomain], "eff-KPSD")
	b.ReportMetric(effs[policy.Kelp], "eff-KP")
	b.Log("\n" + experiments.EfficiencyTable(experiments.Figure14(rows)).String())
}

func BenchmarkFigure15_RemoteSensitivity(b *testing.B) {
	var rows []experiments.SensitivityRow
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		var err error
		rows, err = experiments.Figure15(h)
		if err != nil {
			b.Fatal(err)
		}
	}
	avgs := experiments.SensitivityAverages(rows)
	b.ReportMetric(avgs[experiments.RemoteDRAM], "avg-perf-RemoteDRAM")
	b.Log("\n" + experiments.SensitivityTable("Figure 15", rows).String())
}

func BenchmarkFigure16_RemoteSweep(b *testing.B) {
	var rows []experiments.RemoteSweepRow
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		var err error
		rows, err = experiments.Figure16(h)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.ML == experiments.CNN2 && r.DataLocalPct == 0 && r.ThreadsLocalPct == 100 {
			b.ReportMetric(r.Slowdown, "CNN2-slowdown-0%data-local")
		}
	}
	b.Log("\n" + experiments.RemoteSweepTable(rows).String())
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblation_Backpressure removes the global backpressure mechanism:
// without it, NUMA subdomains alone would fully isolate the ML task, which
// is exactly the false conclusion the paper's Fig. 7 refutes.
func BenchmarkAblation_Backpressure(b *testing.B) {
	var withBP, withoutBP float64
	for i := 0; i < b.N; i++ {
		// Disable the runtime (one sample far beyond the run) so pure
		// subdomain isolation is measured, with and without the
		// backpressure mechanism.
		h := benchHarness()
		h.Opts.SamplePeriod = 1000
		r, err := h.RunNormalized(experiments.CNN1,
			[]experiments.CPUSpec{{Kind: experiments.DRAMAggressor, Level: workload.LevelHigh}},
			policy.KelpSubdomain)
		if err != nil {
			b.Fatal(err)
		}
		withBP = r.MLPerf

		h2 := benchHarness()
		h2.Opts.SamplePeriod = 1000
		h2.Node.Memory.MaxBackpressure = 0
		r2, err := h2.RunNormalized(experiments.CNN1,
			[]experiments.CPUSpec{{Kind: experiments.DRAMAggressor, Level: workload.LevelHigh}},
			policy.KelpSubdomain)
		if err != nil {
			b.Fatal(err)
		}
		withoutBP = r2.MLPerf
	}
	b.ReportMetric(withBP, "CNN1-perf-with-backpressure")
	b.ReportMetric(withoutBP, "CNN1-perf-without-backpressure")
}

// BenchmarkAblation_SamplingPeriod verifies the paper's §IV-D claim that
// Kelp's effectiveness is insensitive to its sampling frequency.
func BenchmarkAblation_SamplingPeriod(b *testing.B) {
	var perfs []float64
	periods := []float64{0.05, 0.1, 0.4}
	for i := 0; i < b.N; i++ {
		perfs = perfs[:0]
		for _, p := range periods {
			h := benchHarness()
			h.Opts.SamplePeriod = p
			mix, err := experiments.MixFor(experiments.Stitch)
			if err != nil {
				b.Fatal(err)
			}
			r, err := h.RunNormalized(experiments.CNN1, mix, policy.Kelp)
			if err != nil {
				b.Fatal(err)
			}
			perfs = append(perfs, r.MLPerf)
		}
	}
	for i, p := range periods {
		b.ReportMetric(perfs[i], "ml-perf-at-"+sim.FormatTime(p))
	}
}

// BenchmarkAblation_CAT removes LLC partitioning from CoreThrottle,
// quantifying what the cache partition contributes.
func BenchmarkAblation_CAT(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		r, err := h.RunNormalized(experiments.CNN1,
			[]experiments.CPUSpec{{Kind: experiments.LLCAggressor}},
			policy.CoreThrottle)
		if err != nil {
			b.Fatal(err)
		}
		with = r.MLPerf

		h2 := benchHarness()
		h2.Opts.CATWays = 0
		r2, err := h2.RunNormalized(experiments.CNN1,
			[]experiments.CPUSpec{{Kind: experiments.LLCAggressor}},
			policy.CoreThrottle)
		if err != nil {
			b.Fatal(err)
		}
		without = r2.MLPerf
	}
	b.ReportMetric(with, "CNN1-perf-with-CAT")
	b.ReportMetric(without, "CNN1-perf-without-CAT")
}

// BenchmarkAblation_Backfill isolates Kelp's backfilling contribution: the
// CPU throughput gap between KP and KP-SD on the same mix.
func BenchmarkAblation_Backfill(b *testing.B) {
	var kp, kpsd float64
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		mix, err := experiments.MixFor(experiments.Stitch)
		if err != nil {
			b.Fatal(err)
		}
		r, err := h.RunNormalized(experiments.CNN1, mix, policy.Kelp)
		if err != nil {
			b.Fatal(err)
		}
		kp = r.CPUUnits
		r2, err := h.RunNormalized(experiments.CNN1, mix, policy.KelpSubdomain)
		if err != nil {
			b.Fatal(err)
		}
		kpsd = r2.CPUUnits
	}
	b.ReportMetric(kp/kpsd, "KP-over-KPSD-cpu-throughput")
}

// BenchmarkOmitted_KneeSweep reproduces the throughput/latency sweep the
// paper describes but omits ("the sweep plot is omitted for brevity"),
// from which the RNN1 target rate is chosen.
func BenchmarkOmitted_KneeSweep(b *testing.B) {
	var rows []experiments.KneeRow
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		var err error
		rows, err = experiments.KneeSweep(h, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	if k := experiments.Knee(rows, 2.0); k >= 0 {
		b.ReportMetric(rows[k].OfferedQPS, "knee-QPS")
	}
	b.Log("\n" + experiments.KneeTable(rows).String())
}

// BenchmarkOmitted_RatioSweep reproduces the compute/communication ratio
// sweep the paper describes but omits (§III-B).
func BenchmarkOmitted_RatioSweep(b *testing.B) {
	var rows []experiments.RatioRow
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		var err error
		rows, err = experiments.RatioSweep(h)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + experiments.RatioTable(rows).String())
}

// BenchmarkFutureWork_FineGrainedIsolation runs the §VI-D estimate: the
// proposed hardware request-level memory isolation against the paper's
// configurations. Expectation (paper §VI-D): ML performance at least as
// good as Subdomain's, CPU throughput above CoreThrottle's.
func BenchmarkFutureWork_FineGrainedIsolation(b *testing.B) {
	var rows []experiments.OverallRow
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		var err error
		rows, err = experiments.FutureWork(h)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range experiments.SummarizeAll(rows) {
		switch s.Policy {
		case policy.KelpSubdomain:
			b.ReportMetric(s.MeanMLSlowdown, "KPSD-ml-slowdown")
		case policy.FineGrained:
			b.ReportMetric(s.MeanMLSlowdown, "FG-ml-slowdown")
			b.ReportMetric(s.MeanCPUThroughput, "FG-cpu-throughput")
		}
	}
	b.Log("\n" + experiments.FutureWorkTable(rows).String())
}

// BenchmarkFutureWork_PrefetchGovernor runs the §VI-B estimate: a hardware
// feedback-directed prefetcher makes plain subdomain isolation (no software
// toggling) as effective as Kelp's managed toggling.
func BenchmarkFutureWork_PrefetchGovernor(b *testing.B) {
	var withGov, withoutGov float64
	for i := 0; i < b.N; i++ {
		// No software runtime in either run (SamplePeriod beyond the run).
		h := benchHarness()
		h.Opts.SamplePeriod = 1000
		r, err := h.RunNormalized(experiments.CNN1,
			[]experiments.CPUSpec{{Kind: experiments.DRAMAggressor, Level: workload.LevelHigh}},
			policy.KelpSubdomain)
		if err != nil {
			b.Fatal(err)
		}
		withoutGov = r.MLPerf

		h2 := benchHarness()
		h2.Opts.SamplePeriod = 1000
		h2.Node.HardwarePrefetchGovernor = true
		r2, err := h2.RunNormalized(experiments.CNN1,
			[]experiments.CPUSpec{{Kind: experiments.DRAMAggressor, Level: workload.LevelHigh}},
			policy.KelpSubdomain)
		if err != nil {
			b.Fatal(err)
		}
		withGov = r2.MLPerf
	}
	b.ReportMetric(withoutGov, "CNN1-perf-no-governor")
	b.ReportMetric(withGov, "CNN1-perf-hw-governor")
}

// BenchmarkFutureWork_MBAvsFineGrained contrasts the two §VI-D hardware
// options on a mix with a cache-resident batch task: MBA protects the ML
// task but its rate controller also throttles LLC-served requests,
// collapsing the batch task; request-level fine-grained isolation protects
// the ML task without that side effect — the paper's argument for it.
func BenchmarkFutureWork_MBAvsFineGrained(b *testing.B) {
	var results [2]*experiments.NormResult
	for i := 0; i < b.N; i++ {
		for j, k := range []policy.Kind{policy.MBAThrottle, policy.FineGrained} {
			h := benchHarness()
			r, err := h.RunNormalized(experiments.CNN3,
				[]experiments.CPUSpec{
					{Kind: experiments.DRAMAggressor, Level: workload.LevelHigh},
					{Kind: experiments.LLCAggressor},
				}, k)
			if err != nil {
				b.Fatal(err)
			}
			results[j] = r
		}
	}
	b.ReportMetric(results[0].MLPerf, "MBA-ml-perf")
	b.ReportMetric(results[0].CPUUnits, "MBA-cpu-units")
	b.ReportMetric(results[1].MLPerf, "FG-ml-perf")
	b.ReportMetric(results[1].CPUUnits, "FG-cpu-units")
}

// BenchmarkAblation_InfeedPipelining contrasts CNN1's serial in-feed with a
// double-buffered one under the DRAM antagonist: overlap absorbs moderate
// contention entirely but cannot hide a producer slower than the
// accelerator — even well-engineered input pipelines need Kelp's isolation
// under heavy contention.
func BenchmarkAblation_InfeedPipelining(b *testing.B) {
	var serialPerf, pipelinedPerf float64
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		r, err := h.RunNormalized(experiments.CNN1,
			[]experiments.CPUSpec{{Kind: experiments.DRAMAggressor, Level: workload.LevelHigh}},
			policy.Baseline)
		if err != nil {
			b.Fatal(err)
		}
		serialPerf = r.MLPerf

		// Pipelined variant, same contention, driven directly.
		run := func(withAggressor bool) float64 {
			cfg := h.Node
			n, err := node.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			applied, err := policy.Apply(n, policy.Baseline, h.Opts)
			if err != nil {
				b.Fatal(err)
			}
			p, err := workload.PipelinedCNN1(experiments.CNN1.Platform())
			if err != nil {
				b.Fatal(err)
			}
			if err := n.AddTask(p, applied.ML); err != nil {
				b.Fatal(err)
			}
			if withAggressor {
				agg, err := workload.NewDRAMAggressor(workload.LevelHigh)
				if err != nil {
					b.Fatal(err)
				}
				if err := n.AddTask(agg, applied.Low); err != nil {
					b.Fatal(err)
				}
			}
			n.Run(h.Warmup)
			n.StartMeasurement()
			n.Run(h.Measure)
			return p.Throughput(n.Now())
		}
		alone := run(false)
		contended := run(true)
		pipelinedPerf = contended / alone
	}
	b.ReportMetric(serialPerf, "serial-CNN1-perf")
	b.ReportMetric(pipelinedPerf, "pipelined-CNN1-perf")
}

// BenchmarkRelatedWork_SLOController compares the Heracles-style latency-
// target loop against Kelp on the RNN1 + DRAM-H scenario: both protect the
// tail, but the SLO loop pays with revoked low-priority cores while Kelp's
// passive isolation keeps the antagonist running.
func BenchmarkRelatedWork_SLOController(b *testing.B) {
	var sloTail, sloCPU, kelpTail, kelpCPU float64
	for i := 0; i < b.N; i++ {
		// Kelp run.
		h := benchHarness()
		r, err := h.RunNormalized(experiments.RNN1,
			[]experiments.CPUSpec{{Kind: experiments.DRAMAggressor, Level: workload.LevelHigh}},
			policy.Kelp)
		if err != nil {
			b.Fatal(err)
		}
		kelpTail, kelpCPU = r.MLTailNorm, r.CPUUnits

		// SLO-controller run, hand-wired (it is not one of the paper's
		// four configurations).
		n, err := node.New(h.Node)
		if err != nil {
			b.Fatal(err)
		}
		cg := n.Cgroups()
		if _, err := cg.Create("ml", 1); err != nil {
			b.Fatal(err)
		}
		if err := cg.SetCPUs("ml", n.Processor().SocketCores(0).Take(2)); err != nil {
			b.Fatal(err)
		}
		server, err := experiments.NewMLTask(n, experiments.RNN1, "ml")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cg.Create("low", 0); err != nil {
			b.Fatal(err)
		}
		pool := n.Processor().SocketCores(0).Minus(n.Processor().SocketCores(0).Take(2))
		if err := cg.SetCPUs("low", pool); err != nil {
			b.Fatal(err)
		}
		agg, err := workload.NewDRAMAggressor(workload.LevelHigh)
		if err != nil {
			b.Fatal(err)
		}
		if err := n.AddTask(agg, "low"); err != nil {
			b.Fatal(err)
		}
		inf := server.(*workload.Inference)
		ctl, err := policy.NewSLOController(n, policy.SLOControllerConfig{
			Server: inf, TargetP95: 0.022, Group: "low", Pool: pool,
			MinCores: 2, MaxCores: pool.Len(), SamplePeriod: 0.1, Headroom: 0.3,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := n.Engine().AddController("slo", 0.1, ctl); err != nil {
			b.Fatal(err)
		}
		n.Run(h.Warmup)
		n.StartMeasurement()
		n.Run(h.Measure)
		base, err := h.Standalone(experiments.RNN1)
		if err != nil {
			b.Fatal(err)
		}
		sloTail = inf.TailLatency(0.95) / base.MLTail
		sloCPU = agg.Throughput(n.Now())
	}
	b.ReportMetric(sloTail, "SLO-tail-norm")
	b.ReportMetric(sloCPU, "SLO-cpu-units")
	b.ReportMetric(kelpTail, "KP-tail-norm")
	b.ReportMetric(kelpCPU, "KP-cpu-units")
}

// BenchmarkNodeStep measures the raw simulation step cost with a realistic
// mix (one training task plus four batch tasks), the unit of cost behind
// every experiment above.
func BenchmarkNodeStep(b *testing.B) {
	h := benchHarness()
	cfg := h.Node
	n, err := node.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := policy.Apply(n, policy.Kelp, policy.DefaultOptions()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Engine().Tick()
	}
}
