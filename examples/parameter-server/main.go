// Parameter server: distributed synchronous training across several worker
// nodes (the paper's Fig. 1 workflow). Each worker runs CNN3 (GPU platform
// with a host-side parameter-server phase); one contended worker drags the
// whole lock-step service down — the paper's "tail amplification" argument
// for why node-level interference matters at service scale (§II-D).
package main

import (
	"fmt"
	"log"

	"kelp"
	"kelp/internal/cluster"
	"kelp/internal/workload"
)

func run(contendedWorkers int, pol kelp.Policy) *cluster.Result {
	workers := make([]cluster.WorkerSpec, 4)
	for i := range workers {
		workers[i].Policy = pol
		if i < contendedWorkers {
			workers[i].Aggressor = true
			workers[i].Level = kelp.LevelHigh
		}
	}
	res, err := kelp.RunCluster(cluster.Config{
		Workers: workers,
		Node:    kelp.DefaultNodeConfig(),
		MLCores: 4,
		Warmup:  2 * kelp.Second,
		Measure: 4 * kelp.Second,
		MakeTask: func() (*workload.Training, error) {
			return workload.NewCNN3(kelp.NewGPU())
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("Distributed CNN3 training, 4 workers in lock step (unmanaged)")
	fmt.Printf("%-20s %12s %14s %14s\n",
		"contended workers", "steps/s", "p95 step (ms)", "amplification")
	for _, contended := range []int{0, 1, 2, 4} {
		r := run(contended, kelp.Baseline)
		fmt.Printf("%-20d %12.2f %14.2f %14.3f\n",
			contended, r.StepsPerSec, r.P95StepTime*1e3, r.Amplification)
	}

	fmt.Println("\nSame cluster, one contended worker, Kelp on every node:")
	r := run(1, kelp.Kelp)
	fmt.Printf("%-20d %12.2f %14.2f %14.3f\n",
		1, r.StepsPerSec, r.P95StepTime*1e3, r.Amplification)

	fmt.Println("\nA single contended worker slows every step of the whole service;")
	fmt.Println("running Kelp on the nodes removes the straggler and restores the")
	fmt.Println("service rate — per-node QoS is a service-level necessity (§II-D).")
}
