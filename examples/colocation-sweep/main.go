// Colocation sweep: the paper's first case study (Fig. 9). CNN1 training on
// the Cloud TPU platform shares a node with a growing number of Stitch
// batch instances; all four system configurations are compared.
package main

import (
	"fmt"
	"log"

	"kelp"
	"kelp/internal/experiments"
	"kelp/internal/policy"
)

func main() {
	h := kelp.NewHarness()

	fmt.Println("CNN1 + Stitch colocation sweep (paper Fig. 9)")
	fmt.Printf("%-10s %-7s %12s %18s\n", "instances", "policy", "CNN1 (norm.)", "Stitch (units/s)")
	for _, instances := range []int{1, 3, 6} {
		for _, k := range policy.Kinds() {
			r, err := h.RunNormalized(experiments.CNN1, experiments.StitchSweep(instances), k)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10d %-7s %12.3f %18.1f\n", instances, k, r.MLPerf, r.CPUUnits)
		}
		fmt.Println()
	}
	fmt.Println("Baseline collapses as Stitch load grows; Kelp holds CNN1 near")
	fmt.Println("standalone while backfilling regains the batch throughput that")
	fmt.Println("plain subdomain isolation (KP-SD) gives up.")
}
