// Future hardware: the paper's §VI proposals, implemented and compared.
//
//   - HW-FG: request-level memory prioritization with per-thread
//     backpressure (§VI-C/D). Predicted — and shown — to match Subdomain's
//     ML protection while beating every software policy's CPU throughput.
//   - MBA: Intel's Memory Bandwidth Allocation rate controller, with the
//     defect the paper documents: it throttles LLC-served requests too, so
//     cache-resident batch work pays disproportionately.
//   - HW prefetch governor (§VI-B): feedback-directed prefetching that
//     relieves controller saturation with no software toggling.
package main

import (
	"fmt"
	"log"

	"kelp"
	"kelp/internal/experiments"
	"kelp/internal/policy"
)

func main() {
	h := kelp.NewHarness()

	fmt.Println("CNN3 + DRAM-H + LLC-resident batch, all configurations:")
	fmt.Printf("%-7s %14s %18s\n", "policy", "CNN3 (norm.)", "batch (units/s)")
	mix := []experiments.CPUSpec{
		{Kind: experiments.DRAMAggressor, Level: kelp.LevelHigh},
		{Kind: experiments.LLCAggressor},
	}
	for _, k := range policy.AllKinds() {
		r, err := h.RunNormalized(experiments.CNN3, mix, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s %14.3f %18.1f\n", k, r.MLPerf, r.CPUUnits)
	}

	fmt.Println("\nHardware prefetch governor (§VI-B), CNN1 vs DRAM-H under plain")
	fmt.Println("subdomain isolation, no software runtime:")
	for _, governor := range []bool{false, true} {
		hg := kelp.NewHarness()
		hg.Opts.SamplePeriod = 1000 // disable the software runtime
		hg.Node.HardwarePrefetchGovernor = governor
		r, err := hg.RunNormalized(experiments.CNN1,
			[]experiments.CPUSpec{{Kind: experiments.DRAMAggressor, Level: kelp.LevelHigh}},
			kelp.KelpSubdomain)
		if err != nil {
			log.Fatal(err)
		}
		label := "without governor"
		if governor {
			label = "with governor   "
		}
		fmt.Printf("  %s CNN1 = %.3f of standalone\n", label, r.MLPerf)
	}
	fmt.Println("\nRequest-level isolation (HW-FG) protects the ML task with no")
	fmt.Println("fragmentation and no software loop; MBA pays the documented LLC")
	fmt.Println("side-effect; the governor replaces Kelp's prefetcher toggling.")
}
