// Node agent: the paper's deployment model (§IV-D). A Borglet-style agent
// admits the accelerated task with its JSON QoS profile, applies the Kelp
// policy, and places batch tasks — low subdomain first, backfill after.
// The node's state is then inspected through the sysfs-style control
// surface, exactly as an operator would on a production host.
package main

import (
	"fmt"
	"log"
	"strings"

	"kelp"
)

func main() {
	// The cluster scheduler ships a profile with the accelerated task.
	profiles := kelp.NewProfileRegistry()
	prof := kelp.DefaultProfile("CNN1")
	prof.SamplePeriodSec = 0.1 // sim-scaled control period
	if err := profiles.Put(prof); err != nil {
		log.Fatal(err)
	}

	opts := kelp.DefaultOptions()
	opts.SamplePeriod = 0 // defer to the profile
	agent, err := kelp.NewAgent(kelp.AgentConfig{
		Node:     kelp.DefaultNodeConfig(),
		Policy:   kelp.Kelp,
		Options:  opts,
		Profiles: profiles,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Admit the high-priority accelerated task (2 reserved cores), then a
	// stream of batch work.
	cnn1, err := kelp.NewCNN1(kelp.NewCloudTPU())
	if err != nil {
		log.Fatal(err)
	}
	if err := agent.AdmitML(cnn1, 2); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		stitch, err := kelp.NewStitch(i)
		if err != nil {
			log.Fatal(err)
		}
		if err := agent.AdmitBatch(stitch); err != nil {
			log.Fatal(err)
		}
	}

	agent.Run(3 * kelp.Second)
	agent.StartMeasurement()
	agent.Run(2 * kelp.Second)

	n := agent.Node()
	fmt.Printf("CNN1: %.1f steps/s\n", cnn1.Throughput(n.Now()))
	rt := agent.Applied().Runtime
	fmt.Printf("kelp runtime: prefetchers=%d lowCores=%d backfill=%d (%d decisions)\n\n",
		rt.LowPrefetchers(), rt.LowCores(), rt.BackfillCores(), len(rt.History()))

	// Inspect the node through the control filesystem.
	fs, err := kelp.NewControlFS(n)
	if err != nil {
		log.Fatal(err)
	}
	groups, _ := fs.ReadDir("/cgroup")
	for _, g := range groups {
		cpus, _ := fs.ReadFile("/cgroup/" + g + "/cpuset.cpus")
		prio, _ := fs.ReadFile("/cgroup/" + g + "/priority")
		schemata, _ := fs.ReadFile("/resctrl/" + g + "/schemata")
		fmt.Printf("/cgroup/%-9s priority=%-4s cpus=%-12s %s\n",
			g, prio, cpus, strings.ReplaceAll(schemata, "\n", " "))
	}
	counters, _ := fs.ReadFile("/proc/counters")
	fmt.Println("\n/proc/counters:")
	fmt.Println(counters)
}
