// Quickstart: colocate a CNN training job (Cloud TPU platform) with a
// bandwidth-hungry Stream batch job on one node, first unmanaged and then
// under the Kelp runtime, and compare outcomes.
package main

import (
	"fmt"
	"log"

	"kelp"
)

func run(policy kelp.Policy) (mlPerf, cpuUnits float64) {
	n := kelp.MustNode(kelp.DefaultNodeConfig())
	applied, err := kelp.Apply(n, policy, kelp.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	cnn1, err := kelp.NewCNN1(kelp.NewCloudTPU())
	if err != nil {
		log.Fatal(err)
	}
	if err := n.AddTask(cnn1, applied.ML); err != nil {
		log.Fatal(err)
	}
	stream, err := kelp.NewStream(8)
	if err != nil {
		log.Fatal(err)
	}
	if err := n.AddTask(stream, applied.Low); err != nil {
		log.Fatal(err)
	}

	n.Run(3 * kelp.Second) // warmup: controllers converge
	n.StartMeasurement()
	n.Run(2 * kelp.Second)

	return cnn1.Throughput(n.Now()), stream.Throughput(n.Now())
}

func main() {
	// Standalone reference: CNN1 alone.
	n := kelp.MustNode(kelp.DefaultNodeConfig())
	applied, err := kelp.Apply(n, kelp.Baseline, kelp.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	cnn1, err := kelp.NewCNN1(kelp.NewCloudTPU())
	if err != nil {
		log.Fatal(err)
	}
	if err := n.AddTask(cnn1, applied.ML); err != nil {
		log.Fatal(err)
	}
	n.Run(3 * kelp.Second)
	n.StartMeasurement()
	n.Run(2 * kelp.Second)
	standalone := cnn1.Throughput(n.Now())

	fmt.Printf("CNN1 standalone: %.1f steps/s\n\n", standalone)
	fmt.Printf("%-22s %14s %16s\n", "configuration", "CNN1 (norm.)", "Stream (units/s)")
	for _, p := range []kelp.Policy{kelp.Baseline, kelp.Kelp} {
		ml, cpuu := run(p)
		fmt.Printf("%-22s %14.3f %16.1f\n", p.String(), ml/standalone, cpuu)
	}
	fmt.Println("\nKelp isolates the training job from the Stream antagonist's")
	fmt.Println("memory pressure while keeping most of the batch throughput.")
}
