// Inference QoS: the paper's second case study (Fig. 10). A pipelined RNN
// inference server on the TPU platform shares its host with a CPU-based
// CNN training job (CPUML); throughput and tail latency are compared under
// all four system configurations.
package main

import (
	"fmt"
	"log"

	"kelp"
	"kelp/internal/experiments"
	"kelp/internal/policy"
)

func main() {
	h := kelp.NewHarness()

	fmt.Println("RNN1 + CPUML inference QoS sweep (paper Fig. 10)")
	fmt.Printf("%-8s %-7s %12s %12s %16s\n",
		"threads", "policy", "QPS (norm.)", "p95 (norm.)", "CPUML (units/s)")
	for _, threads := range []int{4, 10, 16} {
		for _, k := range policy.Kinds() {
			r, err := h.RunNormalized(experiments.RNN1, experiments.CPUMLSweep(threads), k)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8d %-7s %12.3f %12.3f %16.1f\n",
				threads, k, r.MLPerf, r.MLTailNorm, r.CPUUnits)
		}
		fmt.Println()
	}
	fmt.Println("Kelp keeps the server's tail latency near standalone while the")
	fmt.Println("training job retains most of its throughput; core throttling")
	fmt.Println("alone reacts too slowly to the server's sub-millisecond phases.")
}
