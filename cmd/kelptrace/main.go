// Command kelptrace prints the RNN1 execution timeline (paper Fig. 3):
// standalone versus colocated with a DRAM antagonist.
//
// Usage:
//
//	kelptrace [-level H] [-requests 4] [-res 0.2]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kelp/internal/experiments"
	"kelp/internal/trace"
	"kelp/internal/workload"
)

func main() {
	level := flag.String("level", "H", "aggressor level: L, M, H")
	requests := flag.Int("requests", 4, "requests to trace")
	res := flag.Float64("res", 0.2, "timeline resolution, ms per character")
	flag.Parse()

	cfg := trace.DefaultConfig()
	cfg.Requests = *requests
	switch strings.ToUpper(*level) {
	case "L":
		cfg.Level = workload.LevelLow
	case "M":
		cfg.Level = workload.LevelMedium
	case "H":
		cfg.Level = workload.LevelHigh
	default:
		fmt.Fprintf(os.Stderr, "kelptrace: unknown level %q\n", *level)
		os.Exit(2)
	}

	r, err := trace.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kelptrace:", err)
		os.Exit(1)
	}
	fmt.Println(experiments.Figure3Table(r))
	fmt.Println("C = CPU assist, A = accelerator, - = PCIe transfer, . = idle")
	fmt.Println("standalone:", r.Standalone.Render(*res*1e-3))
	fmt.Println("colocated :", r.Colocated.Render(*res*1e-3))
}
