// Command kelptrace prints the RNN1 execution timeline (paper Fig. 3):
// standalone versus colocated with a DRAM antagonist.
//
// Usage:
//
//	kelptrace [-level H] [-requests 4] [-res 0.2] [-policy KP]
//
// -policy runs both timelines under an isolation policy (BL, CT, KP-SD, KP,
// HW-FG, MBA) with a flight recorder attached, and renders the colocated
// timeline merged with the recorded controller actuations and distress
// spans; without it the figure's original unmanaged placement is traced.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kelp/internal/experiments"
	"kelp/internal/scenario"
	"kelp/internal/trace"
	"kelp/internal/workload"
)

func main() {
	level := flag.String("level", "H", "aggressor level: L, M, H")
	requests := flag.Int("requests", 4, "requests to trace")
	res := flag.Float64("res", 0.2, "timeline resolution, ms per character")
	polFlag := flag.String("policy", "", "isolation policy (BL, CT, KP-SD, KP, HW-FG, MBA); empty traces unmanaged")
	flag.Parse()

	cfg := trace.DefaultConfig()
	cfg.Requests = *requests
	switch strings.ToUpper(*level) {
	case "L":
		cfg.Level = workload.LevelLow
	case "M":
		cfg.Level = workload.LevelMedium
	case "H":
		cfg.Level = workload.LevelHigh
	default:
		fmt.Fprintf(os.Stderr, "kelptrace: unknown level %q\n", *level)
		os.Exit(2)
	}
	if *polFlag != "" {
		pol, err := scenario.ParsePolicy(*polFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kelptrace:", err)
			os.Exit(2)
		}
		cfg.Policy = &pol
	}

	r, err := trace.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kelptrace:", err)
		os.Exit(1)
	}
	fmt.Println(experiments.Figure3Table(r))
	fmt.Println("C = CPU assist, A = accelerator, - = PCIe transfer, . = idle")
	fmt.Println("standalone:", r.Standalone.Render(*res*1e-3))
	if cfg.Policy == nil {
		fmt.Println("colocated :", r.Colocated.Render(*res*1e-3))
		return
	}
	fmt.Printf("colocated under %s (T = throttle, B = boost, . = nop, # = distress asserted):\n", *cfg.Policy)
	fmt.Println(r.Colocated.RenderWithEvents(*res*1e-3, r.Events))
}
