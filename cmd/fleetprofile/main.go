// Command fleetprofile prints the fleet 99%-ile memory bandwidth CDF
// (paper Fig. 2).
//
// Usage:
//
//	fleetprofile [-machines 10000] [-seed 2]
package main

import (
	"flag"
	"fmt"
	"os"

	"kelp/internal/experiments"
	"kelp/internal/fleet"
)

func main() {
	machines := flag.Int("machines", 10000, "fleet size")
	seed := flag.Int64("seed", 2, "random seed")
	flag.Parse()

	cfg := fleet.DefaultCensusConfig()
	cfg.Machines = *machines
	cfg.Seed = *seed

	rows, above70, err := experiments.Figure2(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetprofile:", err)
		os.Exit(1)
	}
	fmt.Println(experiments.Figure2Table(rows, above70))
}
