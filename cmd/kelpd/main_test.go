package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// base is a config that passes validation; tests perturb one field each.
func base() config {
	return config{
		addr: ":0", policy: "KP",
		maxSessions: 8, queueDepth: 4,
		sessionTTL: time.Minute, jobTimeout: time.Second, reqTimeout: time.Second,
		maxBody: 1 << 20, snapEvery: 16,
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*config)
		want string
	}{
		{"max-sessions zero", func(c *config) { c.maxSessions = 0 }, "-max-sessions"},
		{"max-sessions negative", func(c *config) { c.maxSessions = -3 }, "-max-sessions"},
		{"queue-depth zero", func(c *config) { c.queueDepth = 0 }, "-queue-depth"},
		{"job-timeout negative", func(c *config) { c.jobTimeout = -time.Second }, "-job-timeout"},
		{"request-timeout zero", func(c *config) { c.reqTimeout = 0 }, "-request-timeout"},
		{"rate negative", func(c *config) { c.rate = -1 }, "-rate"},
		{"burst negative", func(c *config) { c.burst = -2 }, "-burst"},
		{"max-body zero", func(c *config) { c.maxBody = 0 }, "-max-body"},
		{"snapshot-every zero", func(c *config) { c.snapEvery = 0 }, "-snapshot-every"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base()
			tc.mut(&c)
			err := c.validate()
			if err == nil {
				t.Fatal("validate accepted a bad config")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %s", err, tc.want)
			}
		})
	}
}

func TestValidateAccepts(t *testing.T) {
	c := base()
	if err := c.validate(); err != nil {
		t.Fatal(err)
	}
	// Documented special cases: negative TTL disables eviction, negative
	// snapshot-every disables snapshots, zero rate disables limiting.
	c.sessionTTL = -1
	c.snapEvery = -1
	c.rate = 0
	if err := c.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProbePersistDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "persist")
	if err := probePersistDir(dir); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("probe left %d files behind", len(ents))
	}

	if os.Geteuid() != 0 { // root ignores mode bits
		ro := filepath.Join(t.TempDir(), "ro")
		if err := os.Mkdir(ro, 0o555); err != nil {
			t.Fatal(err)
		}
		if err := probePersistDir(ro); err == nil {
			t.Fatal("probe accepted an unwritable directory")
		}
	}

	// A path blocked by a regular file must fail fast.
	blocked := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := probePersistDir(filepath.Join(blocked, "sub")); err == nil {
		t.Fatal("probe accepted a path through a regular file")
	}
}
