// Command kelpd runs a managed node behind an HTTP API: admission
// (POST /tasks), simulation control (POST /advance), a Prometheus-style
// /metrics endpoint, the flight-recorder event stream (GET /events), and
// the sysfs-style control surface under /fs/.
//
// Usage:
//
//	kelpd [-addr :8080] [-policy KP] [-profile prof.json]
//
// Example session:
//
//	curl -XPOST localhost:8080/tasks -d '{"ml":"CNN1","cores":2}'
//	curl -XPOST localhost:8080/tasks -d '{"kind":"Stitch"}'
//	curl -XPOST localhost:8080/advance -d '{"ms":2000}'
//	curl localhost:8080/metrics
//	curl 'localhost:8080/events?type=distress.assert&type=kelp.actuate'
//	curl localhost:8080/fs/cgroup/low/cpuset.cpus
//
// See docs/OBSERVABILITY.md for the event taxonomy and a worked session.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"kelp/internal/agent"
	"kelp/internal/httpd"
	"kelp/internal/node"
	"kelp/internal/policy"
	"kelp/internal/profile"
	"kelp/internal/scenario"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	polFlag := flag.String("policy", "KP", "isolation policy: BL, CT, KP-SD, KP, HW-FG, MBA")
	profilePath := flag.String("profile", "", "JSON QoS profile for the accelerated task")
	flag.Parse()

	pol, err := scenario.ParsePolicy(*polFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kelpd:", err)
		os.Exit(2)
	}
	profiles := profile.NewRegistry()
	if *profilePath != "" {
		p, err := profile.Load(*profilePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kelpd:", err)
			os.Exit(1)
		}
		if err := profiles.Put(p); err != nil {
			fmt.Fprintln(os.Stderr, "kelpd:", err)
			os.Exit(1)
		}
	}
	opts := policy.DefaultOptions()
	a, err := agent.New(agent.Config{
		Node:     node.DefaultConfig(),
		Policy:   pol,
		Options:  opts,
		Profiles: profiles,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kelpd:", err)
		os.Exit(1)
	}
	srv, err := httpd.New(a)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kelpd:", err)
		os.Exit(1)
	}
	log.Printf("kelpd: policy %s, listening on %s", pol, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
