// Command kelpd runs a managed node behind an HTTP API: admission
// (POST /tasks), simulation control (POST /advance), a Prometheus-style
// /metrics endpoint, the flight-recorder event stream (GET /events), and
// the sysfs-style control surface under /fs/.
//
// Usage:
//
//	kelpd [-addr :8080] [-policy KP] [-profile prof.json] [-faults spec] [-events out.jsonl]
//
// Example session:
//
//	curl -XPOST localhost:8080/tasks -d '{"ml":"CNN1","cores":2}'
//	curl -XPOST localhost:8080/tasks -d '{"kind":"Stitch"}'
//	curl -XPOST localhost:8080/advance -d '{"ms":2000}'
//	curl localhost:8080/metrics
//	curl localhost:8080/healthz
//	curl 'localhost:8080/events?type=distress.assert&type=kelp.actuate'
//	curl localhost:8080/fs/cgroup/low/cpuset.cpus
//
// The daemon shuts down cleanly on SIGINT/SIGTERM: in-flight requests get
// a bounded grace period and, when -events is set, the flight-recorder
// buffer is flushed to the given JSONL file on exit.
//
// See docs/OBSERVABILITY.md for the event taxonomy and a worked session,
// and docs/RESILIENCE.md for the -faults spec format.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kelp/internal/agent"
	"kelp/internal/events"
	"kelp/internal/faults"
	"kelp/internal/httpd"
	"kelp/internal/node"
	"kelp/internal/policy"
	"kelp/internal/profile"
	"kelp/internal/scenario"
)

// shutdownGrace bounds how long in-flight requests may run after a
// termination signal before the listener is torn down anyway.
const shutdownGrace = 5 * time.Second

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	polFlag := flag.String("policy", "KP", "isolation policy: BL, CT, KP-SD, KP, HW-FG, MBA")
	profilePath := flag.String("profile", "", "JSON QoS profile for the accelerated task")
	faultsFlag := flag.String("faults", "", "fault injection spec, e.g. seed=7,drop=0.2,actstick=0.1 (see docs/RESILIENCE.md)")
	eventsPath := flag.String("events", "", "flush the flight-recorder events as JSONL to this file on shutdown")
	flag.Parse()

	if err := run(*addr, *polFlag, *profilePath, *faultsFlag, *eventsPath); err != nil {
		fmt.Fprintln(os.Stderr, "kelpd:", err)
		os.Exit(1)
	}
}

func run(addr, polFlag, profilePath, faultsFlag, eventsPath string) error {
	pol, err := scenario.ParsePolicy(polFlag)
	if err != nil {
		return err
	}
	spec, err := faults.ParseSpec(faultsFlag)
	if err != nil {
		return err
	}
	profiles := profile.NewRegistry()
	if profilePath != "" {
		p, err := profile.Load(profilePath)
		if err != nil {
			return err
		}
		if err := profiles.Put(p); err != nil {
			return err
		}
	}
	a, err := agent.New(agent.Config{
		Node:     node.DefaultConfig(),
		Policy:   pol,
		Options:  policy.DefaultOptions(),
		Profiles: profiles,
		Faults:   spec,
	})
	if err != nil {
		return err
	}
	srv, err := httpd.New(a)
	if err != nil {
		return err
	}

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
		close(errc)
	}()
	log.Printf("kelpd: policy %s, faults %s, listening on %s", pol, spec, addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("kelpd: %s, shutting down (grace %s)", sig, shutdownGrace)
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("kelpd: shutdown: %v", err)
		}
	case err, ok := <-errc:
		if ok && err != nil {
			return err
		}
	}

	if eventsPath != "" {
		if err := flushEvents(a.Events(), eventsPath); err != nil {
			return err
		}
	}
	return nil
}

// flushEvents writes the recorder's buffered events as JSONL.
func flushEvents(rec *events.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	evs := rec.Events()
	if err := events.WriteJSONL(f, evs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("kelpd: %d events flushed to %s (%d dropped by the ring)",
		len(evs), path, rec.Dropped())
	return nil
}
