// Command kelpd runs a multi-tenant simulation session server: named
// sessions (each its own managed node) under /sessions/..., per-session
// async advance job queues with backpressure, token-bucket rate limiting,
// panic recovery, TTL idle eviction, and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	kelpd [-addr :8080] [-policy KP] [-profile prof.json] [-faults spec]
//	      [-max-sessions 1024] [-session-ttl 15m] [-queue-depth 32]
//	      [-job-timeout 30s] [-request-timeout 10s] [-rate 0] [-burst 0]
//	      [-trust-client-header] [-max-body 1048576] [-events out.jsonl]
//	      [-events-dir dir] [-persist dir] [-snapshot-every 16] [-quiet]
//
// Example session:
//
//	curl -XPOST localhost:8080/sessions -d '{"name":"a"}'
//	curl -XPOST localhost:8080/sessions/a/tasks -d '{"ml":"CNN1","cores":2}'
//	curl -XPOST localhost:8080/sessions/a/tasks -d '{"kind":"Stitch"}'
//	curl -XPOST localhost:8080/sessions/a/advance -d '{"ms":2000,"wait":true}'
//	curl localhost:8080/sessions/a/metrics
//	curl localhost:8080/healthz
//	curl 'localhost:8080/sessions/a/events?type=kelp.actuate'
//	curl -N localhost:8080/sessions/a/events/stream   # live SSE feed
//	curl -XDELETE localhost:8080/sessions/a
//
// GET / serves an embedded single-file dashboard: live health tiles over
// /healthz and a scrolling event feed over the /events/stream SSE
// endpoint (long-poll fallback when EventSource is unavailable). No
// external assets — the binary is the whole deployment.
//
// On SIGINT/SIGTERM the daemon drains gracefully: admission stops (new
// sessions and advance jobs answer 503), queued jobs finish — or are
// canceled when the grace period expires — every session's flight
// recorder is flushed to -events-dir, and only then does the listener
// close. -events flushes the server's own control-plane event stream
// (server.*, session.*) on exit.
//
// With -persist <dir> sessions are crash-safe: every accepted command is
// written to a per-session write-ahead log before its result is visible,
// periodic checksummed snapshots bound replay time, and on restart the
// daemon rebuilds every surviving session from disk — byte-identical
// /events and /metrics — quarantining any torn or corrupt file rather
// than refusing to boot. See "Durability and crash recovery" in
// docs/KELPD.md.
//
// See docs/KELPD.md for the session API and overload semantics,
// docs/OBSERVABILITY.md for the event taxonomy, and docs/RESILIENCE.md
// for the -faults spec format.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kelp/internal/events"
	"kelp/internal/faults"
	"kelp/internal/httpd"
	"kelp/internal/profile"
	"kelp/internal/scenario"
)

// drainGrace bounds how long queued jobs may keep running after a
// termination signal before they are canceled; listener teardown gets the
// same budget again afterwards.
const drainGrace = 5 * time.Second

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	polFlag := flag.String("policy", "KP", "default isolation policy for new sessions: BL, CT, KP-SD, KP, HW-FG, MBA")
	profilePath := flag.String("profile", "", "JSON QoS profile loaded into every session")
	faultsFlag := flag.String("faults", "", "default fault injection spec for new sessions (see docs/RESILIENCE.md)")
	maxSessions := flag.Int("max-sessions", 1024, "session pool capacity (503 past it)")
	sessionTTL := flag.Duration("session-ttl", 15*time.Minute, "evict sessions idle longer than this (negative disables)")
	queueDepth := flag.Int("queue-depth", 32, "per-session advance queue depth (429 past it)")
	jobTimeout := flag.Duration("job-timeout", 30*time.Second, "per-advance-job wall-clock cap")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request deadline")
	rate := flag.Float64("rate", 0, "per-client rate limit in requests/s (0 disables)")
	burst := flag.Int("burst", 0, "rate-limit burst (0 selects 2x rate)")
	trustClient := flag.Bool("trust-client-header", false,
		"key rate limiting by the X-Kelp-Client header instead of the remote IP (trusted peers only)")
	maxBody := flag.Int64("max-body", 1<<20, "request body cap in bytes")
	eventsPath := flag.String("events", "", "flush the server control-plane events as JSONL to this file on shutdown")
	eventsDir := flag.String("events-dir", "", "flush each session's flight recorder as <name>.jsonl into this directory on destroy/drain")
	persistDir := flag.String("persist", "", "persist sessions (WAL + snapshots) into this directory and recover them on startup")
	snapEvery := flag.Int("snapshot-every", 16, "write a session snapshot every N logged commands (negative disables snapshots, replay-only)")
	quiet := flag.Bool("quiet", false, "disable the structured access log")
	flag.Parse()

	if err := run(config{
		addr: *addr, policy: *polFlag, profilePath: *profilePath,
		faults: *faultsFlag, maxSessions: *maxSessions, sessionTTL: *sessionTTL,
		queueDepth: *queueDepth, jobTimeout: *jobTimeout, reqTimeout: *reqTimeout,
		rate: *rate, burst: *burst, trustClient: *trustClient, maxBody: *maxBody,
		eventsPath: *eventsPath, eventsDir: *eventsDir,
		persistDir: *persistDir, snapEvery: *snapEvery, quiet: *quiet,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "kelpd:", err)
		os.Exit(1)
	}
}

type config struct {
	addr, policy, profilePath, faults  string
	maxSessions, queueDepth            int
	sessionTTL, jobTimeout, reqTimeout time.Duration
	rate                               float64
	burst                              int
	maxBody                            int64
	eventsPath, eventsDir              string
	persistDir                         string
	snapEvery                          int
	quiet, trustClient                 bool
}

// validate rejects nonsense flag combinations before any listener or
// persist-dir state is touched, with errors that name the flag and the
// accepted range. A negative -session-ttl is deliberately legal (it
// disables idle eviction, as documented on the flag).
func (c config) validate() error {
	if c.maxSessions <= 0 {
		return fmt.Errorf("-max-sessions = %d: want > 0", c.maxSessions)
	}
	if c.queueDepth <= 0 {
		return fmt.Errorf("-queue-depth = %d: want > 0", c.queueDepth)
	}
	if c.jobTimeout <= 0 {
		return fmt.Errorf("-job-timeout = %s: want > 0", c.jobTimeout)
	}
	if c.reqTimeout <= 0 {
		return fmt.Errorf("-request-timeout = %s: want > 0", c.reqTimeout)
	}
	if c.rate < 0 {
		return fmt.Errorf("-rate = %v: want >= 0 (0 disables)", c.rate)
	}
	if c.burst < 0 {
		return fmt.Errorf("-burst = %d: want >= 0 (0 selects 2x rate)", c.burst)
	}
	if c.maxBody <= 0 {
		return fmt.Errorf("-max-body = %d: want > 0", c.maxBody)
	}
	if c.snapEvery == 0 {
		return fmt.Errorf("-snapshot-every = 0: want > 0, or < 0 to disable snapshots")
	}
	return nil
}

// probePersistDir creates the persist directory if needed and proves it is
// writable before the server boots, so a misconfigured path fails fast at
// startup instead of silently degrading every session to ephemeral.
func probePersistDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("-persist %s: %w", dir, err)
	}
	f, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return fmt.Errorf("-persist %s: not writable: %w", dir, err)
	}
	name := f.Name()
	f.Close()
	os.Remove(name)
	return nil
}

func run(c config) error {
	if err := c.validate(); err != nil {
		return err
	}
	if _, err := scenario.ParsePolicy(c.policy); err != nil {
		return err
	}
	if _, err := faults.ParseSpec(c.faults); err != nil {
		return err
	}
	if c.persistDir != "" {
		if err := probePersistDir(c.persistDir); err != nil {
			return err
		}
	}
	cfg := httpd.Config{
		MaxSessions:       c.maxSessions,
		SessionTTL:        c.sessionTTL,
		QueueDepth:        c.queueDepth,
		JobTimeout:        c.jobTimeout,
		RequestTimeout:    c.reqTimeout,
		MaxBodyBytes:      c.maxBody,
		RateLimit:         c.rate,
		RateBurst:         c.burst,
		TrustClientHeader: c.trustClient,
		DefaultPolicy:     c.policy,
		DefaultFaults:     c.faults,
		EventsDir:         c.eventsDir,
		PersistDir:        c.persistDir,
		SnapshotEvery:     c.snapEvery,
	}
	if !c.quiet {
		cfg.AccessLog = os.Stderr
	}
	if c.profilePath != "" {
		p, err := profile.Load(c.profilePath)
		if err != nil {
			return err
		}
		cfg.Profile = &p
	}
	if c.eventsDir != "" {
		if err := os.MkdirAll(c.eventsDir, 0o755); err != nil {
			return err
		}
	}
	srv, err := httpd.New(cfg)
	if err != nil {
		return err
	}

	hs := &http.Server{Addr: c.addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
		close(errc)
	}()
	log.Printf("kelpd: default policy %s, %d session slots, queue depth %d, rate %.0f/s, listening on %s (dashboard at /, live events at /events/stream)",
		c.policy, c.maxSessions, c.queueDepth, c.rate, c.addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		// Drain first — admission stops, queued jobs finish or cancel,
		// session recorders flush — and only then close the listener.
		log.Printf("kelpd: %s, draining (grace %s)", sig, drainGrace)
		ctx, cancel := context.WithTimeout(context.Background(), drainGrace)
		srv.Drain(ctx)
		cancel()
		ctx, cancel = context.WithTimeout(context.Background(), drainGrace)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("kelpd: shutdown: %v", err)
		}
	case err, ok := <-errc:
		srv.Close()
		if ok && err != nil {
			return err
		}
	}

	if c.eventsPath != "" {
		if err := flushEvents(srv.Events(), c.eventsPath); err != nil {
			return err
		}
	}
	return nil
}

// flushEvents writes the server recorder's buffered events as JSONL.
func flushEvents(rec *events.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	evs := rec.Events()
	if err := events.WriteJSONL(f, evs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("kelpd: %d server events flushed to %s (%d dropped by the ring)",
		len(evs), path, rec.Dropped())
	return nil
}
