// Command kelpsim runs one workload mix under one policy and prints the
// normalized results and the controller's actuator trace.
//
// Usage:
//
//	kelpsim -ml CNN1 -cpu Stitch -policy KP [-duration 5] [-parallel N] [-events out.jsonl] [-faults spec]
//
// -events writes the colocated run's flight-recorder stream (admissions,
// controller actuations, distress transitions) as JSON Lines, one event per
// line; see docs/OBSERVABILITY.md.
//
// -faults injects deterministic faults into the controller's signal path
// (e.g. -faults seed=7,drop=0.3,actstick=0.1); the standalone baseline
// stays fault-free. See docs/RESILIENCE.md for the spec format and the
// degradation semantics.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"kelp/internal/events"
	"kelp/internal/experiments"
	"kelp/internal/faults"
	"kelp/internal/policy"
	"kelp/internal/profile"
	"kelp/internal/scenario"
	"kelp/internal/sim"
)

func parseML(s string) (experiments.MLKind, error) {
	for _, m := range experiments.MLKinds() {
		if strings.EqualFold(m.String(), s) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown ML workload %q (RNN1, CNN1, CNN2, CNN3)", s)
}

func parseCPU(s string) (experiments.CPUKind, error) {
	for _, c := range experiments.BatchKinds() {
		if strings.EqualFold(c.String(), s) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown CPU workload %q (Stream, Stitch, CPUML)", s)
}

func parsePolicy(s string) (policy.Kind, error) {
	for _, k := range policy.AllKinds() {
		if strings.EqualFold(k.String(), s) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q (BL, CT, KP-SD, KP)", s)
}

func main() {
	mlFlag := flag.String("ml", "CNN1", "accelerated workload: RNN1, CNN1, CNN2, CNN3")
	cpuFlag := flag.String("cpu", "Stitch", "low-priority workload: Stream, Stitch, CPUML")
	polFlag := flag.String("policy", "KP", "system configuration: BL, CT, KP-SD, KP, HW-FG, MBA")
	duration := flag.Float64("duration", 5, "total simulated seconds (warmup+measure)")
	scenarioPath := flag.String("scenario", "", "JSON scenario file (overrides -ml/-cpu/-policy)")
	profilePath := flag.String("profile", "", "JSON QoS profile for the accelerated task")
	parallel := flag.Int("parallel", 0, "concurrent scenario cells (0 = one per CPU, 1 = serial)")
	eventsPath := flag.String("events", "", "write the colocated run's flight-recorder events as JSONL to this file")
	faultsFlag := flag.String("faults", "", "fault injection spec, e.g. seed=7,drop=0.2,actstick=0.1 (see docs/RESILIENCE.md)")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "kelpsim:", err)
		os.Exit(1)
	}

	var (
		ml   experiments.MLKind
		pol  policy.Kind
		mix  []experiments.CPUSpec
		desc string
		err  error
	)
	h := experiments.NewHarness()
	h.Parallel = *parallel
	if *eventsPath != "" {
		h.Events = events.MustNew(events.DefaultCapacity)
	}
	spec, err := faults.ParseSpec(*faultsFlag)
	if err != nil {
		die(err)
	}
	h.Faults = spec

	if *scenarioPath != "" {
		spec, err := scenario.Load(*scenarioPath)
		if err != nil {
			die(err)
		}
		resolved, err := spec.Resolve()
		if err != nil {
			die(err)
		}
		ml, pol, mix = resolved.ML, resolved.Policy, resolved.CPU
		h.Warmup = resolved.Warmup
		h.Measure = resolved.Measure
		desc = fmt.Sprintf("%s + %d tasks (from %s)", ml, len(mix), *scenarioPath)
	} else {
		ml, err = parseML(*mlFlag)
		if err != nil {
			die(err)
		}
		cpuKind, err := parseCPU(*cpuFlag)
		if err != nil {
			die(err)
		}
		pol, err = parsePolicy(*polFlag)
		if err != nil {
			die(err)
		}
		if *duration > 1 {
			h.Warmup = sim.Duration(*duration) * 0.6
			h.Measure = sim.Duration(*duration) * 0.4
		}
		mix, err = experiments.MixFor(cpuKind)
		if err != nil {
			die(err)
		}
		desc = fmt.Sprintf("%s + %s", ml, cpuKind)
	}

	if *profilePath != "" {
		prof, err := profile.Load(*profilePath)
		if err != nil {
			die(err)
		}
		wm := prof.Materialize(h.Node.Memory)
		h.Opts.Watermarks = &wm
		if prof.SamplePeriodSec > 0 {
			h.Opts.SamplePeriod = prof.SamplePeriodSec
		}
		fmt.Printf("profile: %s (from %s)\n", prof.Name, *profilePath)
	}

	r, err := h.RunNormalized(ml, mix, pol)
	if err != nil {
		die(err)
	}

	fmt.Printf("mix: %s under %s\n", desc, pol)
	fmt.Printf("ML performance (vs standalone): %.3f\n", r.MLPerf)
	if r.MLTailNorm > 0 {
		fmt.Printf("ML 95%%-ile latency (vs standalone): %.3f\n", r.MLTailNorm)
	}
	fmt.Printf("CPU throughput (units/s): %.1f\n", r.CPUUnits)
	for name, tp := range r.Raw.PerTask {
		fmt.Printf("  %-16s %.1f\n", name, tp)
	}
	if rt := r.Raw.Applied.Runtime; rt != nil {
		fmt.Printf("kelp runtime: lowCores=%d prefetchers=%d backfill=%d decisions=%d\n",
			rt.LowCores(), rt.LowPrefetchers(), rt.BackfillCores(), len(rt.History()))
	}
	if th := r.Raw.Applied.Throttler; th != nil {
		fmt.Printf("core throttler: cores=%d decisions=%d\n", th.Cores(), len(th.History()))
	}
	if inj := r.Raw.Faults; inj != nil {
		counts := inj.Counts()
		classes := make([]string, 0, len(counts))
		for c := range counts {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		fmt.Printf("faults: spec %s, %d injected, degraded=%v\n",
			inj.Spec(), inj.Total(), r.Raw.Applied.Degraded())
		for _, c := range classes {
			fmt.Printf("  %-12s %d\n", c, counts[c])
		}
	}

	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		if err != nil {
			die(err)
		}
		evs := h.Events.Events()
		if err := events.WriteJSONL(f, evs); err != nil {
			f.Close()
			die(err)
		}
		if err := f.Close(); err != nil {
			die(err)
		}
		fmt.Printf("events: %d written to %s (%d dropped by the ring)\n",
			len(evs), *eventsPath, h.Events.Dropped())
	}
}
