// Command benchguard compares fresh `go test -bench` output against the
// committed BENCH_*.json snapshot (scripts/bench.sh) and exits non-zero
// when a guarded benchmark's ns/op regressed beyond the allowed ratio.
//
// It exists so CI can gate hot-path performance without installing
// anything: benchstat, when available, gives a nicer statistical report,
// but the pass/fail decision comes from this comparator. The new
// measurement is the minimum across repeated -count runs — the usual
// noise-robust statistic for "how fast can this go" on shared CI machines.
//
//	go run ./cmd/benchguard -baseline BENCH_2026-08-07.json -bench raw.txt
//	go run ./cmd/benchguard -baseline BENCH_2026-08-07.json -emit-baseline old.txt
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"flag"
)

// snapshot mirrors the JSON scripts/bench.sh writes.
type snapshot struct {
	Date       string `json:"date"`
	Benchmarks []struct {
		Package string             `json:"package"`
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"benchmarks"`
}

// baselineNsOp extracts ns/op per benchmark name from a snapshot.
func baselineNsOp(s *snapshot) map[string]float64 {
	out := make(map[string]float64)
	for _, b := range s.Benchmarks {
		if v, ok := b.Metrics["ns/op"]; ok {
			out[b.Name] = v
		}
	}
	return out
}

// parseBench extracts the minimum ns/op per benchmark name from raw
// `go test -bench` output. The -N GOMAXPROCS suffix is stripped so names
// line up with the snapshot's.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	suffix := regexp.MustCompile(`-[0-9]+$`)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := suffix.ReplaceAllString(f[0], "")
		for i := 2; i+1 < len(f); i += 2 {
			if f[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchguard: bad ns/op on %q: %v", sc.Text(), err)
			}
			if old, ok := out[name]; !ok || v < old {
				out[name] = v
			}
		}
	}
	return out, sc.Err()
}

// compare returns one failure line per guarded benchmark whose fresh ns/op
// exceeds baseline*maxRatio, and one informational line per comparison.
func compare(base, fresh map[string]float64, match *regexp.Regexp, maxRatio float64) (info, failures []string) {
	names := make([]string, 0, len(fresh))
	for name := range fresh {
		if match.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		old, ok := base[name]
		if !ok || old <= 0 {
			info = append(info, fmt.Sprintf("%s: no baseline, skipping", name))
			continue
		}
		ratio := fresh[name] / old
		line := fmt.Sprintf("%s: %.4g ns/op vs baseline %.4g ns/op (%.2fx)", name, fresh[name], old, ratio)
		info = append(info, line)
		if ratio > maxRatio {
			failures = append(failures, line)
		}
	}
	return info, failures
}

// emitBaseline renders the snapshot's guarded benchmarks in benchmark text
// format so benchstat can diff it against fresh output.
func emitBaseline(w io.Writer, base map[string]float64, match *regexp.Regexp) {
	names := make([]string, 0, len(base))
	for name := range base {
		if match.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s-1 1 %v ns/op\n", name, base[name])
	}
}

func main() {
	baseline := flag.String("baseline", "", "BENCH_*.json snapshot to compare against")
	benchFile := flag.String("bench", "", "raw `go test -bench` output file")
	match := flag.String("match", "^(BenchmarkResolveSteady|BenchmarkEngineTick|BenchmarkFleetTick|BenchmarkSessionAdvance|BenchmarkMiddlewareOverhead)$", "regexp of benchmark names to guard")
	maxRatio := flag.Float64("max-ratio", 1.25, "fail when fresh ns/op exceeds baseline by this ratio")
	emit := flag.String("emit-baseline", "", "write the baseline in benchmark text format (for benchstat) and exit")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *baseline == "" {
		fail(fmt.Errorf("benchguard: -baseline is required"))
	}
	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fail(err)
	}
	var snap snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		fail(fmt.Errorf("benchguard: %s: %v", *baseline, err))
	}
	base := baselineNsOp(&snap)
	re, err := regexp.Compile(*match)
	if err != nil {
		fail(err)
	}

	if *emit != "" {
		f, err := os.Create(*emit)
		if err != nil {
			fail(err)
		}
		emitBaseline(f, base, re)
		if err := f.Close(); err != nil {
			fail(err)
		}
		return
	}

	if *benchFile == "" {
		fail(fmt.Errorf("benchguard: -bench is required"))
	}
	bf, err := os.Open(*benchFile)
	if err != nil {
		fail(err)
	}
	fresh, err := parseBench(bf)
	bf.Close()
	if err != nil {
		fail(err)
	}

	info, failures := compare(base, fresh, re, *maxRatio)
	for _, line := range info {
		fmt.Println(line)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d benchmark(s) regressed beyond %.2fx of %s:\n", len(failures), *maxRatio, snap.Date)
		for _, line := range failures {
			fmt.Fprintln(os.Stderr, "  "+line)
		}
		os.Exit(1)
	}
	if len(info) == 0 {
		fail(fmt.Errorf("benchguard: no benchmarks matched %q in %s", *match, *benchFile))
	}
}
