package main

import (
	"regexp"
	"strings"
	"testing"
)

const rawBench = `goos: linux
pkg: kelp/internal/memsys
BenchmarkResolveSteady-8   	 1000000	       850.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkResolveSteady-8   	 1000000	       810.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkResolve-8         	 1000000	       900.0 ns/op	       0 B/op	       0 allocs/op
pkg: kelp/internal/sim
BenchmarkEngineTick-8      	171651536	         7.100 ns/op	       0 B/op	       0 allocs/op
PASS
`

func TestParseBenchTakesMinimum(t *testing.T) {
	got, err := parseBench(strings.NewReader(rawBench))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkResolveSteady"] != 810 {
		t.Errorf("min ns/op = %v, want 810", got["BenchmarkResolveSteady"])
	}
	if got["BenchmarkEngineTick"] != 7.1 {
		t.Errorf("EngineTick = %v, want 7.1", got["BenchmarkEngineTick"])
	}
	if got["BenchmarkResolve"] != 900 {
		t.Errorf("Resolve = %v, want 900", got["BenchmarkResolve"])
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := map[string]float64{
		"BenchmarkResolveSteady": 800,
		"BenchmarkEngineTick":    7,
	}
	match := regexp.MustCompile(`^(BenchmarkResolveSteady|BenchmarkEngineTick)$`)

	// Within the ratio: EngineTick up 14%, ResolveSteady slightly faster.
	info, failures := compare(base, map[string]float64{
		"BenchmarkResolveSteady": 780,
		"BenchmarkEngineTick":    8,
		"BenchmarkResolve":       5000, // unguarded, ignored
	}, match, 1.25)
	if len(failures) != 0 {
		t.Errorf("unexpected failures: %v", failures)
	}
	if len(info) != 2 {
		t.Errorf("info lines = %v, want 2 guarded comparisons", info)
	}

	// Beyond the ratio: ResolveSteady up 50%.
	_, failures = compare(base, map[string]float64{
		"BenchmarkResolveSteady": 1200,
		"BenchmarkEngineTick":    7,
	}, match, 1.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkResolveSteady") {
		t.Errorf("failures = %v, want ResolveSteady flagged", failures)
	}

	// A guarded benchmark with no baseline is skipped, not failed.
	_, failures = compare(map[string]float64{}, map[string]float64{
		"BenchmarkEngineTick": 7,
	}, match, 1.25)
	if len(failures) != 0 {
		t.Errorf("missing baseline should skip, got %v", failures)
	}
}

func TestEmitBaselineFormat(t *testing.T) {
	var sb strings.Builder
	emitBaseline(&sb, map[string]float64{
		"BenchmarkEngineTick":    7,
		"BenchmarkResolveSteady": 800,
		"BenchmarkResolve":       900,
	}, regexp.MustCompile(`^(BenchmarkResolveSteady|BenchmarkEngineTick)$`))
	want := "BenchmarkEngineTick-1 1 7 ns/op\nBenchmarkResolveSteady-1 1 800 ns/op\n"
	if sb.String() != want {
		t.Errorf("emitted:\n%q\nwant:\n%q", sb.String(), want)
	}
}
