// Command kelpfs is an interactive (or scripted) shell over a simulated
// node's sysfs-style control surface: the same cgroup/resctrl file formats
// an operator would use on a production Kelp host.
//
// Usage:
//
//	kelpfs [-ml CNN1] [-agg H]
//
// Commands (stdin, one per line; '#' starts a comment):
//
//	ls [path]          list a directory
//	cat <path>         read a control or counter file
//	write <path> <v>   write a control file (quotes not needed)
//	mkdir <path>       create a cgroup
//	rmdir <path>       remove a cgroup
//	run <ms>           advance simulated time
//	tasks              list tasks with current throughput
//	help               this text
//	quit               exit
//
// Example session:
//
//	mkdir /cgroup/batch
//	write /cgroup/batch/cpuset.cpus 8-21
//	write /resctrl/batch/schemata MB:0=50
//	run 500
//	cat /proc/counters
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"kelp/internal/accel"
	"kelp/internal/cgroup"
	"kelp/internal/node"
	"kelp/internal/resctrlfs"
	"kelp/internal/sim"
	"kelp/internal/workload"
)

func buildNode(ml, agg string) (*node.Node, error) {
	n, err := node.New(node.DefaultConfig())
	if err != nil {
		return nil, err
	}
	cg := n.Cgroups()
	if ml != "none" {
		if _, err := cg.Create("ml", cgroup.High); err != nil {
			return nil, err
		}
		if err := cg.SetCPUs("ml", n.Processor().SocketCores(0).Take(4)); err != nil {
			return nil, err
		}
		var task workload.Task
		switch strings.ToUpper(ml) {
		case "RNN1":
			dev, err := accel.NewDevice(accel.NewTPU())
			if err != nil {
				return nil, err
			}
			task, err = workload.NewRNN1(dev, n.Engine().RNG().Stream("rnn1"))
			if err != nil {
				return nil, err
			}
		case "CNN1":
			task, err = workload.NewCNN1(accel.NewCloudTPU())
		case "CNN2":
			task, err = workload.NewCNN2(accel.NewCloudTPU())
		case "CNN3":
			task, err = workload.NewCNN3(accel.NewGPU())
		default:
			return nil, fmt.Errorf("unknown ML workload %q", ml)
		}
		if err != nil {
			return nil, err
		}
		if err := n.AddTask(task, "ml"); err != nil {
			return nil, err
		}
	}
	if agg != "none" {
		var lvl workload.Level
		switch strings.ToUpper(agg) {
		case "L":
			lvl = workload.LevelLow
		case "M":
			lvl = workload.LevelMedium
		case "H":
			lvl = workload.LevelHigh
		default:
			return nil, fmt.Errorf("unknown aggressor level %q", agg)
		}
		if _, err := cg.Create("agg", cgroup.Low); err != nil {
			return nil, err
		}
		a, err := workload.NewDRAMAggressor(lvl)
		if err != nil {
			return nil, err
		}
		cores := n.Processor().SocketCores(0)
		if err := cg.SetCPUs("agg", cores.Minus(cores.Take(4)).Take(a.Config().Threads)); err != nil {
			return nil, err
		}
		if err := n.AddTask(a, "agg"); err != nil {
			return nil, err
		}
	}
	return n, nil
}

const helpText = `commands: ls [path] | cat <path> | write <path> <value> |
          mkdir <path> | rmdir <path> | run <ms> | tasks | help | quit`

func main() {
	ml := flag.String("ml", "CNN1", "accelerated workload (RNN1/CNN1/CNN2/CNN3/none)")
	agg := flag.String("agg", "H", "DRAM aggressor level (L/M/H/none)")
	flag.Parse()

	n, err := buildNode(*ml, *agg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kelpfs:", err)
		os.Exit(1)
	}
	fs, err := resctrlfs.New(n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kelpfs:", err)
		os.Exit(1)
	}

	fmt.Println("kelpfs: sysfs-style control surface over a simulated node")
	fmt.Println(helpText)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		cmd, args := fields[0], fields[1:]
		var err error
		switch cmd {
		case "ls":
			path := "/"
			if len(args) > 0 {
				path = args[0]
			}
			var entries []string
			entries, err = fs.ReadDir(path)
			if err == nil {
				fmt.Println(strings.Join(entries, "  "))
			}
		case "cat":
			if len(args) != 1 {
				err = fmt.Errorf("usage: cat <path>")
				break
			}
			var data string
			data, err = fs.ReadFile(args[0])
			if err == nil {
				fmt.Println(data)
			}
		case "write":
			if len(args) < 2 {
				err = fmt.Errorf("usage: write <path> <value>")
				break
			}
			err = fs.WriteFile(args[0], strings.Join(args[1:], " "))
		case "mkdir":
			if len(args) != 1 {
				err = fmt.Errorf("usage: mkdir <path>")
				break
			}
			err = fs.Mkdir(args[0])
		case "rmdir":
			if len(args) != 1 {
				err = fmt.Errorf("usage: rmdir <path>")
				break
			}
			err = fs.Rmdir(args[0])
		case "run":
			if len(args) != 1 {
				err = fmt.Errorf("usage: run <ms>")
				break
			}
			var ms float64
			ms, err = strconv.ParseFloat(args[0], 64)
			if err != nil || ms <= 0 {
				err = fmt.Errorf("usage: run <ms>")
				break
			}
			n.Run(ms * sim.Millisecond)
			fmt.Printf("now %s\n", sim.FormatTime(n.Now()))
		case "tasks":
			for _, t := range n.Tasks() {
				fmt.Printf("%-16s %12.1f units/s\n", t.Name(), t.Throughput(n.Now()))
			}
		case "help":
			fmt.Println(helpText)
		case "quit", "exit":
			return
		default:
			err = fmt.Errorf("unknown command %q (try help)", cmd)
		}
		if err != nil {
			fmt.Println("error:", err)
		}
	}
}
