// Command kelpbench regenerates every table and figure of the paper's
// evaluation and prints the result tables.
//
// Usage:
//
//	kelpbench [-exp all|table1|fig2|fig3|fig5|fig7|fig9|fig10|fig13|fig14|fig15|fig16] [-quick] [-parallel N]
//
// -quick shortens warmup/measure windows for a fast smoke run; the shapes
// hold but averages are noisier.
//
// -parallel bounds how many scenario cells run concurrently (default: one
// per available CPU; 1 recovers the serial sweep). Every cell owns a fresh
// node with its own seeded RNG streams and results are collected in input
// order, so output is identical at any setting.
//
// -events out.jsonl attaches a flight recorder to every colocation run and
// writes the merged stream as JSON Lines when the sweep finishes. Recording
// forces -parallel 1 so the stream is deterministic; the tables themselves
// are identical with or without it. See docs/OBSERVABILITY.md.
//
// -faults spec injects deterministic faults into every colocation run's
// controller signal path (standalone baselines stay fault-free), and
// -exp resilience runs the dedicated fault-injection study (opt-in, not
// part of 'all'); see docs/RESILIENCE.md.
//
// -exp clusterfaults runs the cluster fault-tolerance study (also
// opt-in): lock-step training clusters under injected worker crashes,
// hangs and interference escalation, with checkpoint/restore recovery —
// reporting goodput, wasted-step fraction and recovery time per isolation
// policy. -cfaults spec replaces the standard regimes with a custom one
// (same -faultseed-rooted determinism); see docs/CLUSTER.md.
//
// -exp fleet runs the fleet-scale goodput study (opt-in as well): a
// synthetic fleet of -machines heterogeneous machines (default 2000)
// hosts lock-step training jobs and best-effort batch tasks under
// placement policies from random scatter to Kelp-aware packing, and the
// table reports fleet-wide ML Productivity Goodput, its availability /
// throughput / program components, the Kelp-on versus Kelp-off population
// split and batch throughput. -cfaults replaces the study's default churn
// regime; see docs/FLEET.md.
//
// -cpuprofile f / -memprofile f write pprof profiles of the run (CPU
// sampled across the whole run, heap snapshot at exit after a GC), for the
// hot-path workflow described in docs/PERFORMANCE.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"kelp/internal/clusterfaults"
	"kelp/internal/events"
	"kelp/internal/experiments"
	"kelp/internal/faults"
	"kelp/internal/fleet"
	"kelp/internal/sim"
	"kelp/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (comma-separated), or 'all'")
	quick := flag.Bool("quick", false, "short windows for a smoke run")
	outdir := flag.String("outdir", "", "also write each table as CSV into this directory")
	parallel := flag.Int("parallel", 0, "concurrent scenario cells (0 = one per CPU, 1 = serial)")
	eventsPath := flag.String("events", "", "write flight-recorder events as JSONL (forces -parallel 1)")
	faultsFlag := flag.String("faults", "", "fault injection spec applied to every colocation run (see docs/RESILIENCE.md)")
	faultSeed := flag.Uint64("faultseed", 42, "PRNG seed for the resilience and clusterfaults studies' fault regimes")
	cfaultsFlag := flag.String("cfaults", "", "custom cluster fault spec for -exp clusterfaults and -exp fleet (see docs/CLUSTER.md)")
	machines := flag.Int("machines", 2000, "fleet size for -exp fleet")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	coldStart := flag.Bool("coldstart", false, "disable incremental resolve and warm-started sweep cells (re-simulate everything; output is identical, only slower)")
	flag.Parse()

	if *coldStart {
		experiments.SetWarmStart(false)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kelpbench: -cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "kelpbench: -cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "kelpbench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "kelpbench: -memprofile:", err)
			}
		}()
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "kelpbench:", err)
			os.Exit(1)
		}
	}
	emit := func(name string, t *experiments.Table) error {
		fmt.Println(t)
		if *outdir == "" {
			return nil
		}
		return t.SaveCSV(filepath.Join(*outdir, name+".csv"))
	}

	h := experiments.NewHarness()
	h.Parallel = *parallel
	if *coldStart {
		h.Node.NoIncremental = true
	}
	if *eventsPath != "" {
		// A merged stream from concurrent cells would interleave
		// nondeterministically, so recording forces the serial sweep.
		if *parallel != 1 {
			requested := "the default (one cell per CPU)"
			if *parallel != 0 {
				requested = fmt.Sprintf("-parallel %d", *parallel)
			}
			fmt.Fprintf(os.Stderr,
				"kelpbench: -events forces -parallel 1 for a deterministic stream, overriding %s\n",
				requested)
		}
		h.Parallel = 1
		h.Events = events.MustNew(1 << 20)
	}
	if *quick {
		h.Warmup = 1 * sim.Second
		h.Measure = 1 * sim.Second
	}
	spec, err := faults.ParseSpec(*faultsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kelpbench:", err)
		os.Exit(2)
	}
	h.Faults = spec
	cspec, err := clusterfaults.ParseSpec(*cfaultsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kelpbench:", err)
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	ran := 0

	run := func(name string, fn func() error) {
		if !all && !want[name] {
			return
		}
		ran++
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "kelpbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("table1", func() error {
		return emit("table1", experiments.Table1Table())
	})
	run("fig2", func() error {
		rows, above70, err := experiments.Figure2(fleet.DefaultCensusConfig())
		if err != nil {
			return err
		}
		return emit("fig2", experiments.Figure2Table(rows, above70))
	})
	run("fig3", func() error {
		r, err := experiments.Figure3(trace.DefaultConfig())
		if err != nil {
			return err
		}
		if err := emit("fig3", experiments.Figure3Table(r)); err != nil {
			return err
		}
		fmt.Println("standalone:", r.Standalone.Render(0.2e-3))
		fmt.Println("colocated :", r.Colocated.Render(0.2e-3))
		fmt.Println()
		return nil
	})
	run("fig5", func() error {
		rows, err := experiments.Figure5(h)
		if err != nil {
			return err
		}
		return emit("fig5", experiments.SensitivityTable("Figure 5: workload sensitivity to shared resource interference", rows))
	})
	run("fig7", func() error {
		rows, err := experiments.Figure7(h)
		if err != nil {
			return err
		}
		return emit("fig7", experiments.BackpressureTable(rows))
	})
	run("fig9", func() error {
		rows, err := experiments.Figure9(h)
		if err != nil {
			return err
		}
		experiments.NormalizeCPU(rows, 1)
		if err := emit("fig9", experiments.CaseStudyTable(
			"Figures 9 & 11: CNN1 + Stitch sweep", "Stitch instances", rows)); err != nil {
			return err
		}
		fmt.Println(experiments.CaseStudyChart("Fig. 9a: CNN1 perf vs Stitch instances", rows))
		return nil
	})
	run("fig10", func() error {
		rows, err := experiments.Figure10(h)
		if err != nil {
			return err
		}
		experiments.NormalizeCPU(rows, 2)
		if err := emit("fig10", experiments.CaseStudyTable(
			"Figures 10 & 12: RNN1 + CPUML sweep", "CPUML threads", rows)); err != nil {
			return err
		}
		fmt.Println(experiments.CaseStudyChart("Fig. 10a: RNN1 QPS vs CPUML threads", rows))
		return nil
	})
	var overall []experiments.OverallRow
	run("fig13", func() error {
		rows, err := experiments.Figure13(h)
		if err != nil {
			return err
		}
		overall = rows
		return emit("fig13", experiments.OverallTable(rows))
	})
	run("fig14", func() error {
		if overall == nil {
			rows, err := experiments.Figure13(h)
			if err != nil {
				return err
			}
			overall = rows
		}
		return emit("fig14", experiments.EfficiencyTable(experiments.Figure14(overall)))
	})
	run("fig15", func() error {
		rows, err := experiments.Figure15(h)
		if err != nil {
			return err
		}
		return emit("fig15", experiments.SensitivityTable("Figure 15: sensitivity including remote memory interference", rows))
	})
	run("knee", func() error {
		rows, err := experiments.KneeSweep(h, nil)
		if err != nil {
			return err
		}
		if err := emit("knee", experiments.KneeTable(rows)); err != nil {
			return err
		}
		fmt.Println(experiments.KneeChart(rows))
		return nil
	})
	run("ratio", func() error {
		rows, err := experiments.RatioSweep(h)
		if err != nil {
			return err
		}
		return emit("ratio", experiments.RatioTable(rows))
	})
	run("futurework", func() error {
		rows, err := experiments.FutureWork(h)
		if err != nil {
			return err
		}
		return emit("futurework", experiments.FutureWorkTable(rows))
	})
	run("fig16", func() error {
		rows, err := experiments.Figure16(h)
		if err != nil {
			return err
		}
		return emit("fig16", experiments.RemoteSweepTable(rows))
	})
	// The resilience study is opt-in (not part of 'all'): it injects
	// faults by design, so the default sweep stays byte-identical to a
	// build without the injector.
	if want["resilience"] {
		ran++
		rows, err := experiments.Resilience(h, *faultSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kelpbench: resilience: %v\n", err)
			os.Exit(1)
		}
		if err := emit("resilience", experiments.ResilienceTable(rows)); err != nil {
			fmt.Fprintf(os.Stderr, "kelpbench: resilience: %v\n", err)
			os.Exit(1)
		}
	}

	// The cluster fault-tolerance study is opt-in for the same reason:
	// the default sweep never builds a cluster injector.
	if want["clusterfaults"] {
		ran++
		var custom *clusterfaults.Spec
		if strings.TrimSpace(*cfaultsFlag) != "" {
			custom = &cspec
		}
		rows, err := experiments.ClusterFaults(h, *faultSeed, custom)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kelpbench: clusterfaults: %v\n", err)
			os.Exit(1)
		}
		if err := emit("clusterfaults", experiments.ClusterFaultsTable(rows)); err != nil {
			fmt.Fprintf(os.Stderr, "kelpbench: clusterfaults: %v\n", err)
			os.Exit(1)
		}
	}

	// The fleet study is opt-in too: it composes thousands of machines and
	// a cluster-level fault replay on top of the node sweep, which is a
	// different (and heavier) question than the per-node tables.
	if want["fleet"] {
		ran++
		var custom *clusterfaults.Spec
		if strings.TrimSpace(*cfaultsFlag) != "" {
			custom = &cspec
		}
		rows, err := experiments.FleetStudy(h, *machines, custom)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kelpbench: fleet: %v\n", err)
			os.Exit(1)
		}
		if err := emit("fleet", experiments.FleetTable(rows, *machines)); err != nil {
			fmt.Fprintf(os.Stderr, "kelpbench: fleet: %v\n", err)
			os.Exit(1)
		}
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "kelpbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kelpbench:", err)
			os.Exit(1)
		}
		evs := h.Events.Events()
		if err := events.WriteJSONL(f, evs); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "kelpbench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "kelpbench:", err)
			os.Exit(1)
		}
		fmt.Printf("events: %d written to %s (%d dropped by the ring)\n",
			len(evs), *eventsPath, h.Events.Dropped())
	}
}
