package main

// Crash mode (-crash N): kelpload spawns a real kelpd-equivalent server as
// a child process persisting into -persist-dir, drives load at it, SIGKILLs
// it at a randomized point mid-load, and restarts it — N times. After every
// kill it decodes the surviving write-ahead logs and asserts the durability
// contract end to end:
//
//   - every command the driver saw acknowledged is in a log (nothing
//     acknowledged is ever lost), and
//   - the restarted server's recovered sessions answer /events and /metrics
//     byte-identically to a reference session rebuilt serially, with
//     persistence off, from the same surviving command prefix.
//
// The child is this same binary re-executed with the internal -serve-child
// flag; it announces "ADDR host:port" on stdout and serves until killed.

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"time"

	"kelp/internal/durable"
	"kelp/internal/httpd"
)

// serveChild is the re-exec'd server process for -crash mode.
func serveChild(c *cfg) error {
	srv, err := httpd.New(httpd.Config{
		MaxSessions:       c.maxSessions,
		QueueDepth:        c.queueDepth,
		DefaultPolicy:     c.policy,
		SessionTTL:        -1,
		TrustClientHeader: true,
		PersistDir:        c.persistDir,
		SnapshotEvery:     c.snapshotEvery,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Printf("ADDR %s\n", ln.Addr())
	return http.Serve(ln, srv.Handler())
}

// child is one spawned server process.
type child struct {
	cmd *exec.Cmd
	url string
}

func startChild(c *cfg) (*child, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe,
		"-serve-child",
		"-persist-dir", c.persistDir,
		"-snapshot-every", fmt.Sprint(c.snapshotEvery),
		"-policy", c.policy,
		"-max-sessions", fmt.Sprint(crashPoolSize(c)),
		"-queue-depth", fmt.Sprint(c.queueDepth),
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("crash child announced no address")
	}
	addr, ok := strings.CutPrefix(sc.Text(), "ADDR ")
	if !ok {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("unexpected child banner %q", sc.Text())
	}
	ch := &child{cmd: cmd, url: "http://" + addr}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(ch.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return ch, nil
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("crash child never became healthy: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (ch *child) kill() {
	ch.cmd.Process.Kill()
	ch.cmd.Wait()
}

func crashPoolSize(c *cfg) int {
	if c.maxSessions > 0 {
		return c.maxSessions
	}
	// Every round's sessions accumulate across restarts.
	return c.crash*c.sessions + 1
}

// acked tracks what one session's driver saw acknowledged before the kill.
type acked struct {
	created  bool
	admits   int
	advances int
}

func runCrash(c *cfg, out io.Writer) error {
	if c.persistDir == "" {
		dir, err := os.MkdirTemp("", "kelpload-crash-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		c.persistDir = dir
	}
	rng := rand.New(rand.NewSource(c.seed))
	client := &http.Client{Timeout: 60 * time.Second}

	ch, err := startChild(c)
	if err != nil {
		return err
	}
	defer func() { ch.kill() }()

	verified := 0
	for round := 0; round < c.crash; round++ {
		// Drive this round's sessions while a randomized SIGKILL is armed.
		delay := time.Duration(10+rng.Intn(120)) * time.Millisecond
		go func(p *os.Process) {
			time.Sleep(delay)
			p.Kill()
		}(ch.cmd.Process)

		acks := make(map[string]*acked, c.sessions)
		for i := 0; i < c.sessions; i++ {
			name := fmt.Sprintf("load-r%d-%d", round, i)
			a := &acked{}
			acks[name] = a
			if !driveCrashSession(client, ch.url, name, c, a) {
				break // child died mid-request
			}
		}
		ch.cmd.Wait()

		// Decode every surviving log and check nothing acknowledged is lost.
		durableCmds, err := decodeSurvivingWALs(c.persistDir)
		if err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		for name, a := range acks {
			d, ok := durableCmds[name]
			if a.created && !ok {
				return fmt.Errorf("round %d: acked session %s has no surviving log", round, name)
			}
			if ok && (d.admits < a.admits || d.advances < a.advances) {
				return fmt.Errorf("round %d: session %s lost acked commands: durable %d/%d, acked %d/%d (admits/advances)",
					round, name, d.admits, d.advances, a.admits, a.advances)
			}
		}

		// Restart on the same directory and byte-compare every recovered
		// session against a serial no-persist reference.
		ch, err = startChild(c)
		if err != nil {
			return fmt.Errorf("round %d: restart: %w", round, err)
		}
		n, err := verifyRecovered(client, ch.url, c, durableCmds)
		if err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		verified += n
		fmt.Fprintf(out, "crash round %d: killed after %s, %d sessions durable, %d recovered byte-identical\n",
			round, delay, len(durableCmds), n)
	}
	fmt.Fprintf(out, "kelpload: %d crash rounds, %d recovered-session verifications, all byte-identical\n",
		c.crash, verified)
	return nil
}

// driveCrashSession runs one session's script, recording what was
// acknowledged. Returns false when the child stopped answering.
func driveCrashSession(client *http.Client, base, name string, c *cfg, a *acked) bool {
	for _, step := range sessionScript(name, c) {
		status, _, err := doReq(client, step.method, base+step.path, step.body, name)
		if err != nil {
			return false
		}
		if status >= 400 {
			continue
		}
		switch {
		case step.path == "/sessions":
			a.created = true
		case strings.HasSuffix(step.path, "/tasks"):
			a.admits++
		case strings.HasSuffix(step.path, "/advance"):
			a.advances++
		}
	}
	return true
}

// decodeSurvivingWALs reads every session log in dir (tolerating torn
// tails, which recovery salvages) and reduces each to its durable command
// counts.
func decodeSurvivingWALs(dir string) (map[string]*acked, error) {
	entries, _, _, err := durable.ScanDir(dir)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*acked, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(e.WALPath)
		if err != nil {
			return nil, err
		}
		rd, err := durable.DecodeWAL(data)
		if err != nil {
			return nil, fmt.Errorf("%s: surviving log corrupt: %w", e.WALPath, err)
		}
		d := &acked{}
		for _, rec := range rd.Records {
			switch rec.Kind {
			case durable.KindCreate:
				d.created = true
			case durable.KindAdmit:
				d.admits++
			case durable.KindAdvance:
				d.advances++
			}
		}
		if d.created {
			out[e.Session] = d
		}
	}
	return out, nil
}

// verifyRecovered rebuilds each durable session serially on an in-process,
// persistence-free server — the kelpload script is deterministic, so
// re-driving the surviving command prefix reproduces the exact state — and
// byte-compares /events and /metrics with the recovered child.
func verifyRecovered(client *http.Client, childURL string, c *cfg, durableCmds map[string]*acked) (int, error) {
	ref, err := httpd.New(httpd.Config{
		MaxSessions:       len(durableCmds) + 1,
		DefaultPolicy:     c.policy,
		SessionTTL:        -1,
		TrustClientHeader: true,
	})
	if err != nil {
		return 0, err
	}
	defer ref.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	hs := &http.Server{Handler: ref.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	refURL := "http://" + ln.Addr().String()

	n := 0
	for name, d := range durableCmds {
		// Re-drive exactly the durable prefix: create, then the first
		// d.admits admissions, then d.advances advances.
		admits, advances := 0, 0
		for _, step := range sessionScript(name, c) {
			isTask := strings.HasSuffix(step.path, "/tasks")
			isAdv := strings.HasSuffix(step.path, "/advance")
			if isTask && admits >= d.admits {
				continue
			}
			if isAdv && advances >= d.advances {
				continue
			}
			status, body, err := doReq(client, step.method, refURL+step.path, step.body, name)
			if err != nil || status >= 400 {
				return n, fmt.Errorf("reference replay %s %s = %d %s (%v)", step.method, step.path, status, body, err)
			}
			if isTask {
				admits++
			}
			if isAdv {
				advances++
			}
		}
		for _, ep := range []string{"/events", "/metrics"} {
			status, want, err := doReq(client, "GET", refURL+"/sessions/"+name+ep, "", name)
			if err != nil || status != 200 {
				return n, fmt.Errorf("reference %s%s = %d (%v)", name, ep, status, err)
			}
			status, got, err := doReq(client, "GET", childURL+"/sessions/"+name+ep, "", name)
			if err != nil || status != 200 {
				return n, fmt.Errorf("recovered %s%s = %d (%v)", name, ep, status, err)
			}
			if want != got {
				return n, fmt.Errorf("recovered session %s%s diverged from the serial reference", name, ep)
			}
		}
		n++
	}
	return n, nil
}
