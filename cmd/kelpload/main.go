// Command kelpload drives a kelpd session server with concurrent clients
// and reports latency percentiles, shed rates, and failures. It is the
// repo's overload harness: point it at a small session pool or a strict
// rate limit and watch the server answer 429/503 instead of falling over.
//
// With -inprocess it boots its own kelpd server on a loopback listener and
// drives that, so one command (and one `go run -race`) exercises the full
// client → TCP → middleware → session-worker path:
//
//	go run ./cmd/kelpload -inprocess -sessions 500 -clients 8 \
//	    -requests 3 -ms 20 -admit -check -verify 2
//
// Each session is owned by exactly one client and receives an identical
// request script (create, optionally admit CNN1 + a Stitch antagonist,
// then -requests synchronous advances of -ms simulated milliseconds), so
// every session's flight recorder must come out byte-identical no matter
// how the clients interleave. -verify N replays N sampled sessions
// serially afterwards and fails if /events or /metrics diverge.
//
// -stream N verifies live streaming after the run: N sessions' SSE feeds
// (/events/stream) must be byte-identical to cursor polling, with gap
// detection via oldest_seq, plus a dashboard smoke test (GET / serves the
// embedded page; the server-level stream delivers an event).
//
// -check turns the report into a verdict: exit 1 on any transport error,
// any non-shed 5xx, fewer than -min-shed shed requests, or a heap above
// -max-heap-mb. Shed answers (429, and 503 with Retry-After) are counted
// separately — under deliberate overload they are the correct behavior.
//
// -crash N switches kelpload into a crash-recovery harness: it spawns a
// persisted server as a child process, SIGKILLs it at a randomized point
// mid-load, restarts it, and verifies both that no acknowledged command
// was lost and that every recovered session answers /events and /metrics
// byte-identically to a serial no-persist reference — N times over:
//
//	go run ./cmd/kelpload -crash 3 -sessions 20 -requests 4 -ms 20 -admit
//
// See docs/KELPD.md, "Durability & crash recovery".
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"kelp/internal/httpd"
)

func main() {
	var c cfg
	flag.StringVar(&c.addr, "addr", "", "kelpd base URL (e.g. http://localhost:8080); empty with -inprocess")
	flag.BoolVar(&c.inprocess, "inprocess", false, "boot an in-process kelpd on a loopback listener and drive it")
	flag.IntVar(&c.sessions, "sessions", 100, "sessions to create")
	flag.IntVar(&c.clients, "clients", 8, "concurrent client goroutines")
	flag.IntVar(&c.requests, "requests", 4, "advance requests per session")
	flag.Float64Var(&c.ms, "ms", 20, "simulated milliseconds per advance")
	flag.BoolVar(&c.admit, "admit", false, "admit CNN1 + a Stitch antagonist into every session")
	flag.StringVar(&c.policy, "policy", "KP", "session policy")
	flag.Int64Var(&c.seed, "seed", 1, "seed for verify sampling")
	flag.IntVar(&c.verify, "verify", 0, "replay N sampled sessions serially and compare events+metrics")
	flag.IntVar(&c.stream, "stream", 0, "verify N sessions' SSE streams byte-identical to cursor polling, plus a dashboard smoke test")
	flag.BoolVar(&c.check, "check", false, "exit nonzero on failures, unexpected sheds, or heap overrun")
	flag.IntVar(&c.minShed, "min-shed", 0, "with -check, require at least this many shed requests")
	flag.IntVar(&c.maxHeapMB, "max-heap-mb", 0, "with -check, fail if post-run heap exceeds this (0 = no bound)")
	flag.IntVar(&c.maxSessions, "max-sessions", 0, "in-process pool capacity (0 = fit all sessions)")
	flag.IntVar(&c.queueDepth, "queue-depth", 0, "in-process per-session queue depth (0 = default)")
	flag.Float64Var(&c.rate, "rate", 0, "in-process per-client rate limit, requests/s (0 = off)")
	flag.IntVar(&c.crash, "crash", 0, "crash-recovery mode: SIGKILL and restart a spawned persisted server N times, verifying recovery (0 = off)")
	flag.StringVar(&c.persistDir, "persist-dir", "", "persist directory for -crash / -serve-child (default: a temp dir)")
	flag.IntVar(&c.snapshotEvery, "snapshot-every", 0, "child snapshot cadence for -crash (0 = server default, negative = replay-only)")
	flag.BoolVar(&c.serveChild, "serve-child", false, "internal: run as the spawned server process for -crash")
	flag.Parse()
	var err error
	switch {
	case c.serveChild:
		err = serveChild(&c)
	case c.crash > 0:
		err = runCrash(&c, os.Stdout)
	default:
		err = run(&c, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "kelpload:", err)
		os.Exit(1)
	}
}

type cfg struct {
	addr                        string
	inprocess, admit, check     bool
	sessions, clients, requests int
	verify, minShed, maxHeapMB  int
	stream                      int
	maxSessions, queueDepth     int
	crash, snapshotEvery        int
	ms, rate                    float64
	policy                      string
	persistDir                  string
	seed                        int64
	serveChild                  bool
}

// counters aggregates one client's view of the run.
type counters struct {
	ok, shed, clientErr, serverErr, transport int
	latencies                                 []float64 // seconds, successful advances only
}

func (c *counters) add(o counters) {
	c.ok += o.ok
	c.shed += o.shed
	c.clientErr += o.clientErr
	c.serverErr += o.serverErr
	c.transport += o.transport
	c.latencies = append(c.latencies, o.latencies...)
}

func run(c *cfg, out io.Writer) error {
	if c.sessions < 1 || c.clients < 1 || c.requests < 0 {
		return fmt.Errorf("need -sessions >= 1, -clients >= 1, -requests >= 0")
	}
	base := c.addr
	if c.inprocess {
		maxSessions := c.maxSessions
		if maxSessions == 0 {
			maxSessions = c.sessions + c.verify + 1
		}
		srv, err := httpd.New(httpd.Config{
			MaxSessions:   maxSessions,
			QueueDepth:    c.queueDepth,
			RateLimit:     c.rate,
			DefaultPolicy: c.policy,
			SessionTTL:    -1, // the driver controls every session's lifetime
			// The driver is the only peer; honor its per-session
			// X-Kelp-Client tags as rate-limit identities.
			TrustClientHeader: true,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
	}
	if base == "" {
		return fmt.Errorf("need -addr or -inprocess")
	}
	base = strings.TrimSuffix(base, "/")
	client := &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        c.clients * 2,
			MaxIdleConnsPerHost: c.clients * 2,
		},
	}

	// Fan out: client g owns sessions g, g+clients, g+2*clients, ... Each
	// session sees an identical script, so per-session results must be
	// independent of the interleaving.
	start := time.Now()
	results := make([]counters, c.clients)
	var wg sync.WaitGroup
	for g := 0; g < c.clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < c.sessions; i += c.clients {
				driveSession(client, base, fmt.Sprintf("load-%d", i), c, &results[g])
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)

	var total counters
	for i := range results {
		total.add(results[i])
	}
	report(out, c, &total, wall)

	var verifyErr error
	if c.verify > 0 {
		verifyErr = verifySessions(out, client, base, c)
	}
	if verifyErr == nil && c.stream > 0 {
		verifyErr = verifyStreams(out, client, base, c)
	}

	if c.check {
		switch {
		case total.transport > 0:
			return fmt.Errorf("check: %d transport errors", total.transport)
		case total.serverErr > 0:
			return fmt.Errorf("check: %d non-shed 5xx answers", total.serverErr)
		case total.clientErr > 0:
			return fmt.Errorf("check: %d 4xx answers to well-formed requests", total.clientErr)
		case total.shed < c.minShed:
			return fmt.Errorf("check: %d shed, want >= %d", total.shed, c.minShed)
		case verifyErr != nil:
			return verifyErr
		}
		if c.maxHeapMB > 0 {
			runtime.GC()
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			if heapMB := int(m.HeapAlloc >> 20); heapMB > c.maxHeapMB {
				return fmt.Errorf("check: heap %d MiB > %d MiB", heapMB, c.maxHeapMB)
			}
		}
	}
	return verifyErr
}

// sessionScript is the request script every session receives, in order.
func sessionScript(name string, c *cfg) []struct{ method, path, body string } {
	steps := []struct{ method, path, body string }{
		{"POST", "/sessions", fmt.Sprintf(`{"name":%q,"policy":%q}`, name, c.policy)},
	}
	if c.admit {
		steps = append(steps,
			struct{ method, path, body string }{"POST", "/sessions/" + name + "/tasks", `{"ml":"CNN1","cores":2}`},
			struct{ method, path, body string }{"POST", "/sessions/" + name + "/tasks", `{"kind":"Stitch"}`},
		)
	}
	adv := fmt.Sprintf(`{"ms":%g,"wait":true}`, c.ms)
	for i := 0; i < c.requests; i++ {
		steps = append(steps, struct{ method, path, body string }{"POST", "/sessions/" + name + "/advance", adv})
	}
	return steps
}

// driveSession runs one session's script, classifying every answer. A shed
// create (pool full) abandons the session's remaining steps — there is no
// session to advance.
func driveSession(client *http.Client, base, name string, c *cfg, ctr *counters) {
	for _, step := range sessionScript(name, c) {
		isAdvance := strings.HasSuffix(step.path, "/advance")
		t0 := time.Now()
		status, _, err := doReq(client, step.method, base+step.path, step.body, name)
		lat := time.Since(t0).Seconds()
		switch {
		case err != nil:
			ctr.transport++
			return
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			ctr.shed++
			if strings.HasSuffix(step.path, "/sessions") {
				return // pool full: the whole session was refused
			}
		case status >= 500:
			ctr.serverErr++
		case status >= 400:
			ctr.clientErr++
		default:
			ctr.ok++
			if isAdvance {
				ctr.latencies = append(ctr.latencies, lat)
			}
		}
	}
}

func doReq(client *http.Client, method, url, body, clientKey string) (int, string, error) {
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	// Distinct rate-limit identity per session owner.
	req.Header.Set("X-Kelp-Client", clientKey)
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(data), nil
}

// verifySessions replays N randomly sampled sessions serially against
// fresh session names and byte-compares /events and /metrics: concurrency
// must not have leaked into any session's simulation.
func verifySessions(out io.Writer, client *http.Client, base string, c *cfg) error {
	rng := rand.New(rand.NewSource(c.seed))
	for k := 0; k < c.verify; k++ {
		orig := fmt.Sprintf("load-%d", rng.Intn(c.sessions))
		replay := fmt.Sprintf("verify-%d", k)
		if status, _, err := doReq(client, "GET", base+"/sessions/"+orig, "", "verify"); err != nil || status != 200 {
			// The sampled session was shed during the run; nothing to compare.
			fmt.Fprintf(out, "verify: %s absent (shed), skipped\n", orig)
			continue
		}
		for _, step := range sessionScript(replay, c) {
			if status, body, err := doReq(client, step.method, base+step.path, step.body, "verify"); err != nil || status >= 400 {
				return fmt.Errorf("verify: replay %s %s = %d %s (%v)", step.method, step.path, status, body, err)
			}
		}
		for _, ep := range []string{"/events", "/metrics"} {
			_, want, err := doReq(client, "GET", base+"/sessions/"+orig+ep, "", "verify")
			if err != nil {
				return err
			}
			_, got, err := doReq(client, "GET", base+"/sessions/"+replay+ep, "", "verify")
			if err != nil {
				return err
			}
			if want != got {
				return fmt.Errorf("verify: %s%s diverged from serial replay %s", orig, ep, replay)
			}
		}
		fmt.Fprintf(out, "verify: %s replay byte-identical (events+metrics)\n", orig)
	}
	return nil
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func report(out io.Writer, c *cfg, total *counters, wall time.Duration) {
	sort.Float64s(total.latencies)
	requests := total.ok + total.shed + total.clientErr + total.serverErr + total.transport
	fmt.Fprintf(out, "kelpload: %d sessions x (%d advances of %g ms), %d clients, policy %s, admit=%v\n",
		c.sessions, c.requests, c.ms, c.clients, c.policy, c.admit)
	fmt.Fprintf(out, "          %d requests in %.2fs: %d ok, %d shed (429/503), %d client-err, %d server-err, %d transport-err\n",
		requests, wall.Seconds(), total.ok, total.shed, total.clientErr, total.serverErr, total.transport)
	if n := len(total.latencies); n > 0 {
		fmt.Fprintf(out, "          advance latency p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms (n=%d)\n",
			percentile(total.latencies, 0.50)*1e3, percentile(total.latencies, 0.90)*1e3,
			percentile(total.latencies, 0.99)*1e3, total.latencies[n-1]*1e3, n)
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	fmt.Fprintf(out, "          heap %d MiB after run\n", m.HeapAlloc>>20)
}
