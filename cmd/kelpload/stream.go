package main

// -stream N verification: after the load run, sample N sessions and prove
// the SSE endpoint is trustworthy — the streamed event sequence must be
// byte-identical to the cursor-polled one (same frames, same JSON bytes,
// same order, no gaps), and the embedded dashboard must actually serve.
// This is the live-streaming analog of -verify's replay check: polling is
// the ground truth (it reads the ring directly), streaming must agree.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// streamPage bounds one cursor-poll page; small enough to force several
// pages per session so the pagination + gap-detection path is exercised.
const streamPage = 64

// sseFrame is one parsed "id:/data:" SSE frame.
type sseFrame struct {
	id   uint64
	data string
}

// verifyStreams runs the -stream mode: per sampled session, poll the full
// event list by cursor (failing on any detected gap), stream the same span
// over SSE, and byte-compare. Ends with a dashboard smoke test: GET / must
// serve the embedded page and the server-level stream must deliver at
// least one event.
func verifyStreams(out io.Writer, client *http.Client, base string, c *cfg) error {
	checked := 0
	for i := 0; i < c.sessions && checked < c.stream; i++ {
		name := fmt.Sprintf("load-%d", i)
		if status, _, err := doReq(client, "GET", base+"/sessions/"+name, "", "stream"); err != nil || status != 200 {
			continue // shed during the run; nothing to stream
		}
		raws, seqs, err := pollAllEvents(client, base+"/sessions/"+name+"/events")
		if err != nil {
			return fmt.Errorf("stream: poll %s: %w", name, err)
		}
		if len(seqs) == 0 {
			continue // no events to compare (create-only script)
		}
		frames, err := readStream(client, base+"/sessions/"+name+"/events/stream?since=0", seqs[len(seqs)-1])
		if err != nil {
			return fmt.Errorf("stream: %s: %w", name, err)
		}
		if len(frames) != len(seqs) {
			return fmt.Errorf("stream: %s delivered %d frames, polled %d events", name, len(frames), len(seqs))
		}
		for k := range frames {
			if frames[k].id != seqs[k] {
				return fmt.Errorf("stream: %s frame %d has id %d, polled seq %d", name, k, frames[k].id, seqs[k])
			}
			if frames[k].data != string(raws[k]) {
				return fmt.Errorf("stream: %s seq %d diverged:\n  streamed: %s\n  polled:   %s",
					name, seqs[k], frames[k].data, raws[k])
			}
		}
		fmt.Fprintf(out, "stream: %s byte-identical to polling (%d events)\n", name, len(seqs))
		checked++
	}
	if checked < c.stream {
		return fmt.Errorf("stream: only %d of %d requested sessions were streamable", checked, c.stream)
	}
	return dashboardSmoke(out, client, base)
}

// pollAllEvents pages through a session's event list with a since cursor.
// Contiguity is the contract: within one uninterrupted session every seq
// from 1 must still be buffered, so a page whose first event jumps past
// cursor+1 is a real gap — detected, per the oldest_seq field, not
// inferred from silence.
func pollAllEvents(client *http.Client, url string) ([]json.RawMessage, []uint64, error) {
	var raws []json.RawMessage
	var seqs []uint64
	var cursor uint64
	for {
		status, body, err := doReq(client, "GET",
			fmt.Sprintf("%s?since=%d&limit=%d", url, cursor, streamPage), "", "stream")
		if err != nil {
			return nil, nil, err
		}
		if status != 200 {
			return nil, nil, fmt.Errorf("GET %s = %d", url, status)
		}
		var page struct {
			Events    []json.RawMessage `json:"events"`
			OldestSeq uint64            `json:"oldest_seq"`
		}
		if err := json.Unmarshal([]byte(body), &page); err != nil {
			return nil, nil, err
		}
		if len(page.Events) == 0 {
			return raws, seqs, nil
		}
		for _, raw := range page.Events {
			var e struct {
				Seq uint64 `json:"seq"`
			}
			if err := json.Unmarshal(raw, &e); err != nil {
				return nil, nil, err
			}
			if e.Seq != cursor+1 {
				return nil, nil, fmt.Errorf(
					"detected gap: events in (%d, %d) missing (oldest_seq=%d)",
					cursor, e.Seq, page.OldestSeq)
			}
			cursor = e.Seq
			raws = append(raws, raw)
			seqs = append(seqs, e.Seq)
		}
	}
}

// readStream reads SSE frames from url until a frame with id >= until
// arrives, then hangs up (exercising the server's disconnect teardown).
// Comment lines (the opening cursor report, heartbeats) are skipped.
func readStream(client *http.Client, url string, until uint64) ([]sseFrame, error) {
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("X-Kelp-Client", "stream")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("GET %s = %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		return nil, fmt.Errorf("GET %s Content-Type = %q, want text/event-stream", url, ct)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var frames []sseFrame
	var cur sseFrame
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "": // frame boundary
			if cur.data != "" {
				frames = append(frames, cur)
				if cur.id >= until {
					return frames, nil
				}
				cur = sseFrame{}
			}
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseUint(line[len("id: "):], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad id line %q: %w", line, err)
			}
			cur.id = id
		case strings.HasPrefix(line, "data: "):
			cur.data = line[len("data: "):]
		case strings.HasPrefix(line, ":"): // comment / heartbeat
		default:
			return nil, fmt.Errorf("unexpected stream line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return frames, fmt.Errorf("stream ended before seq %d", until)
}

// dashboardSmoke asserts the embedded dashboard serves at / and that the
// server-level stream it relies on delivers at least one event.
func dashboardSmoke(out io.Writer, client *http.Client, base string) error {
	status, page, err := doReq(client, "GET", base+"/", "", "stream")
	if err != nil {
		return fmt.Errorf("dashboard: %w", err)
	}
	if status != 200 {
		return fmt.Errorf("dashboard: GET / = %d", status)
	}
	for _, want := range []string{"<!DOCTYPE html>", "EventSource", "/events/stream"} {
		if !strings.Contains(page, want) {
			return fmt.Errorf("dashboard: page missing %q", want)
		}
	}
	frames, err := readStream(client, base+"/events/stream?since=0", 1)
	if err != nil {
		return fmt.Errorf("dashboard: server stream: %w", err)
	}
	fmt.Fprintf(out, "dashboard: page served, server stream delivered seq %d\n", frames[0].id)
	return nil
}
